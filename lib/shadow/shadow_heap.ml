open Vmm

let header_bytes = 8

type t = {
  machine : Machine.t;
  allocator : Heap.Allocator_intf.t;
  registry : Object_registry.t;
  shadow_placer : int -> Addr.t option;
  on_shadow_range : base:Addr.t -> pages:int -> unit;
  mutable shadow_pages_created : int;
}

let create ?(shadow_placer = fun _ -> None)
    ?(on_shadow_range = fun ~base:_ ~pages:_ -> ()) ~registry ~allocator
    machine =
  {
    machine;
    allocator;
    registry;
    shadow_placer;
    on_shadow_range;
    shadow_pages_created = 0;
  }

let malloc t ?(site = "<unknown>") size =
  if size <= 0 then invalid_arg "Shadow_heap.malloc: size <= 0";
  let total = size + header_bytes in
  let canonical = t.allocator.alloc total in
  let pages = Addr.pages_spanning canonical total in
  let src = Addr.page_base canonical in
  let shadow_base =
    match t.shadow_placer pages with
    | Some dst ->
      Kernel.mremap_alias_at t.machine ~src ~dst ~pages;
      dst
    | None -> Kernel.mremap_alias t.machine ~src ~pages
  in
  t.shadow_pages_created <- t.shadow_pages_created + pages;
  t.on_shadow_range ~base:shadow_base ~pages;
  let user = shadow_base + Addr.offset canonical + header_bytes in
  (* Record the canonical address in the extra word, through the shadow
     mapping — the store lands on the shared physical page. *)
  Mmu.store t.machine (user - header_bytes) ~width:8 canonical;
  ignore
    (Object_registry.register t.registry ~canonical ~shadow_base ~pages
       ~user_addr:user ~size ~alloc_site:site);
  if Telemetry.Sink.enabled t.machine.Machine.trace then
    Telemetry.Sink.emit t.machine.Machine.trace (fun () ->
        Telemetry.Event.Malloc { site; size; addr = user });
  user

let violation kind fault_addr info =
  raise (Report.Violation { Report.kind; fault_addr; object_info = info })

let free t ?(site = "<unknown>") user =
  try
    (* Reading the bookkeeping word is itself the double-free check: a
       freed object's shadow page is PROT_NONE, so this load traps. *)
    let canonical =
      Detector.guard t.registry ~in_free:true (fun () ->
          Mmu.load t.machine (user - header_bytes) ~width:8)
    in
    match Object_registry.find_by_addr t.registry user with
    | Some obj when obj.Object_registry.user_addr = user ->
      assert (obj.Object_registry.canonical = canonical);
      Kernel.mprotect t.machine ~addr:obj.Object_registry.shadow_base
        ~pages:obj.Object_registry.pages Perm.No_access;
      Object_registry.mark_freed t.registry obj ~free_site:site;
      t.allocator.dealloc canonical;
      if Telemetry.Sink.enabled t.machine.Machine.trace then
        Telemetry.Sink.emit t.machine.Machine.trace (fun () ->
            Telemetry.Event.Free { site; addr = user })
    | Some obj ->
      (* Interior pointer passed to free. *)
      violation Report.Invalid_free user (Some (Detector.object_info obj))
    | None -> violation Report.Invalid_free user None
  with Report.Violation r as exn ->
    Telemetry.Sink.emit_always t.machine.Machine.trace (fun () ->
        Telemetry.Event.Violation
          { kind = Report.kind_label r.Report.kind; addr = r.Report.fault_addr });
    raise exn

let registry t = t.registry
let machine t = t.machine
let shadow_pages_created t = t.shadow_pages_created

let size_of t user =
  match Object_registry.find_by_addr t.registry user with
  | Some obj
    when obj.Object_registry.user_addr = user
         && obj.Object_registry.state = Object_registry.Live ->
    obj.Object_registry.size
  | Some _ | None -> invalid_arg "Shadow_heap.size_of: not a live object"
