open Vmm

let header_bytes = 8

type t = {
  machine : Machine.t;
  allocator : Heap.Allocator_intf.t;
  registry : Object_registry.t;
  shadow_placer : int -> Addr.t option;
  shadow_unplace : base:Addr.t -> pages:int -> unit;
  on_shadow_range : base:Addr.t -> pages:int -> unit;
  shadow_alias :
    (src:Addr.t -> pages:int -> (Addr.t, Fault_plan.error) result) option;
  mutable shadow_pages_created : int;
  mutable unprotected_frees : int;
}

let create ?(shadow_placer = fun _ -> None)
    ?(shadow_unplace = fun ~base:_ ~pages:_ -> ())
    ?(on_shadow_range = fun ~base:_ ~pages:_ -> ()) ?shadow_alias ~registry
    ~allocator machine =
  {
    machine;
    allocator;
    registry;
    shadow_placer;
    shadow_unplace;
    on_shadow_range;
    shadow_alias;
    shadow_pages_created = 0;
    unprotected_frees = 0;
  }

let trace_malloc t site size addr =
  if Telemetry.Sink.enabled t.machine.Machine.trace then
    Telemetry.Sink.emit t.machine.Machine.trace (fun () ->
        Telemetry.Event.Malloc { site; size; addr })

let trace_free t site addr =
  if Telemetry.Sink.enabled t.machine.Machine.trace then
    Telemetry.Sink.emit t.machine.Machine.trace (fun () ->
        Telemetry.Event.Free { site; addr })

(* One whole-allocation attempt: canonical block, then the shadow alias
   through the injectable syscall boundary.  On failure everything is
   undone (block back to the allocator, recycled VA back to its donor),
   so a retry loop can simply call again — and a caller with no retry
   path inherits an unchanged heap. *)
let try_malloc t ?(site = "<unknown>") size =
  if size <= 0 then invalid_arg "Shadow_heap.malloc: size <= 0";
  let total = size + header_bytes in
  let canonical = t.allocator.alloc total in
  let pages = Addr.pages_spanning canonical total in
  let src = Addr.page_base canonical in
  let placed =
    match t.shadow_alias with
    | Some alias -> alias ~src ~pages
    | None ->
      (match t.shadow_placer pages with
       | Some dst ->
         (match Syscalls.mremap_alias_at t.machine ~src ~dst ~pages with
          | Ok () -> Ok dst
          | Error e ->
            t.shadow_unplace ~base:dst ~pages;
            Error e)
       | None -> Syscalls.mremap_alias t.machine ~src ~pages)
  in
  match placed with
  | Error e ->
    t.allocator.dealloc canonical;
    Error e
  | Ok shadow_base ->
    t.shadow_pages_created <- t.shadow_pages_created + pages;
    t.on_shadow_range ~base:shadow_base ~pages;
    let user = shadow_base + Addr.offset canonical + header_bytes in
    (* Record the canonical address in the extra word, through the shadow
       mapping — the store lands on the shared physical page. *)
    Mmu.store t.machine (user - header_bytes) ~width:8 canonical;
    ignore
      (Object_registry.register t.registry ~canonical ~shadow_base ~pages
         ~user_addr:user ~size ~alloc_site:site);
    Stats.count_alloc_op t.machine.Machine.stats;
    trace_malloc t site size user;
    Ok user

let malloc t ?site size =
  Syscalls.ok_or_raise ~name:"Shadow_heap.malloc" (try_malloc t ?site size)

let violation kind fault_addr info =
  raise (Report.Violation { Report.kind; fault_addr; object_info = info })

let trace_violation t (r : Report.t) =
  Telemetry.Sink.emit_always t.machine.Machine.trace (fun () ->
      Report.to_event r)

(* Locate the object a free argument refers to.  Reading the bookkeeping
   word is itself the double-free check: a freed object's shadow page is
   PROT_NONE, so this load traps.  The registry-state check underneath
   it is the software backstop for objects whose free was performed
   {e unprotected} (degraded mode): their pages never got protected, so
   only the registry remembers they are dead. *)
let find_free_target t user =
  let canonical =
    Detector.guard t.registry ~in_free:true (fun () ->
        Mmu.load t.machine (user - header_bytes) ~width:8)
  in
  match Object_registry.find_by_addr t.registry user with
  | Some obj when obj.Object_registry.state <> Object_registry.Live ->
    violation Report.Double_free user (Some (Detector.object_info obj))
  | Some obj when obj.Object_registry.user_addr = user ->
    if obj.Object_registry.canonical <> canonical then
      failwith
        "Shadow_heap.free: bookkeeping word disagrees with the registry \
         (invariant: the canonical address stored through the shadow \
         mapping at malloc time matches the registry record)";
    obj
  | Some obj ->
    (* Interior pointer passed to free. *)
    violation Report.Invalid_free user (Some (Detector.object_info obj))
  | None -> violation Report.Invalid_free user None

let complete_free t (obj : Object_registry.obj) ~site user =
  Object_registry.mark_freed t.registry obj ~free_site:site;
  t.allocator.dealloc obj.Object_registry.canonical;
  Stats.count_free_op t.machine.Machine.stats;
  trace_free t site user

let with_violation_trace t thunk =
  try thunk ()
  with Report.Violation r as exn ->
    trace_violation t r;
    raise exn

let try_free t ?(site = "<unknown>") user =
  with_violation_trace t (fun () ->
      let obj = find_free_target t user in
      match
        Syscalls.mprotect t.machine ~addr:obj.Object_registry.shadow_base
          ~pages:obj.Object_registry.pages Perm.No_access
      with
      | Error e -> Error e (* the object stays live; caller may retry *)
      | Ok () ->
        complete_free t obj ~site user;
        Ok ())

let free t ?site user =
  Syscalls.ok_or_raise ~name:"Shadow_heap.free" (try_free t ?site user)

(* Epoch-mode free: validate and mark the object freed now (so a
   double free in the quarantine window still trips the registry
   check), but defer BOTH the protecting mprotect and the canonical
   dealloc to the caller's epoch — deferring dealloc too is what makes
   the quarantine real: physical reuse cannot outrun protection.  The
   caller must eventually protect the shadow range and then call
   [release_canonical]. *)
let free_deferred t ?(site = "<unknown>") user =
  with_violation_trace t (fun () ->
      let obj = find_free_target t user in
      Object_registry.mark_freed t.registry obj ~free_site:site;
      Stats.count_free_op t.machine.Machine.stats;
      trace_free t site user;
      obj)

let release_canonical t (obj : Object_registry.obj) =
  t.allocator.dealloc obj.Object_registry.canonical

let free_unprotected t ?(site = "<unknown>") user =
  with_violation_trace t (fun () ->
      let obj = find_free_target t user in
      complete_free t obj ~site user;
      t.unprotected_frees <- t.unprotected_frees + 1;
      obj)

let registry t = t.registry
let machine t = t.machine
let shadow_pages_created t = t.shadow_pages_created
let unprotected_frees t = t.unprotected_frees

let size_of t user =
  match Object_registry.find_by_addr t.registry user with
  | Some obj
    when obj.Object_registry.user_addr = user
         && obj.Object_registry.state = Object_registry.Live ->
    obj.Object_registry.size
  | Some _ | None -> invalid_arg "Shadow_heap.size_of: not a live object"
