let check ~va_bytes ~page_bytes ~pages_per_second =
  if not (va_bytes >= 0.) (* also rejects nan *) then
    invalid_arg "Exhaustion: va_bytes < 0";
  if page_bytes <= 0 then invalid_arg "Exhaustion: page_bytes <= 0";
  if not (pages_per_second > 0.) (* also rejects nan *) then
    invalid_arg "Exhaustion: pages_per_second <= 0"

let seconds_until_exhaustion ~va_bytes ~page_bytes ~pages_per_second =
  check ~va_bytes ~page_bytes ~pages_per_second;
  va_bytes /. (float_of_int page_bytes *. pages_per_second)

let hours_until_exhaustion ~va_bytes ~page_bytes ~pages_per_second =
  seconds_until_exhaustion ~va_bytes ~page_bytes ~pages_per_second /. 3600.

let paper_example_hours () =
  hours_until_exhaustion ~va_bytes:(2. ** 47.) ~page_bytes:4096
    ~pages_per_second:1e6

let pages_for_runtime ~seconds ~allocs_per_second ~pages_per_alloc =
  seconds *. allocs_per_second *. pages_per_alloc
