(** §3.4 mitigation strategies for {e long-lived} pools (pools reachable
    from globals, or created in [main]), whose shadow pages are never
    released by [pooldestroy] in practice.

    - {!Interval_reuse}: once the pool retains more than a threshold of
      freed-but-protected shadow pages, release them for reuse.  Cheap,
      but any dangling use of those objects afterwards is no longer
      guaranteed to trap — the paper argues the probability is
      unimportant at realistic thresholds (hours of allocations).
    - {!Conservative_gc}: at the same trigger, run a conservative scan
      to find ranges stale pointers could still reach.  With a real
      collector attached ([?gc] at {!create}), witnessed ranges stay
      pinned and only proven-unreferenced ones are released — the
      detection guarantee survives reclamation.  Without one, the
      legacy cost model applies: the scan is charged
      ([scan_cost_per_object] instructions per live object) and the
      release is unconditional.
    - {!Manual}: never reclaim; the programmer restructured the code
      instead. *)

type strategy =
  | Interval_reuse of { trigger_pages : int }
  | Conservative_gc of { trigger_pages : int; scan_cost_per_object : int }
  | Manual

type t

val create : ?gc:Gc.t -> strategy -> Shadow_pool.t -> t
(** [gc] arms {!Conservative_gc} with the real mark phase; it must be
    bound to the same pool (raises [Invalid_argument] otherwise). *)

val after_free : t -> unit
(** Call after each [poolfree] on the managed pool; runs the strategy's
    trigger check and possibly a reclamation.  A no-op once the managed
    pool has been destroyed (the hook may race a [pooldestroy]). *)

val attach : t -> unit
(** Install {!after_free} as the pool's reclamation hook
    ({!Shadow_pool.set_after_free_hook}), so it fires on {e every} free
    path — eager, degraded, and epoch retirement — without the caller
    having to remember to call it. *)

val trigger_pages : t -> int option
(** The effective trigger threshold ([None] for {!Manual}). *)

val set_trigger_pages : t -> int -> unit
(** Tighten the trigger (VA-pressure response).  The override is capped
    at the configured trigger — pressure can only make reclamation more
    eager, never lazier.  No-op for {!Manual}.  Raises
    [Invalid_argument] on a non-positive value. *)

val reclaimed_pages : t -> int
(** Cumulative shadow pages released by this policy. *)

val gc_runs : t -> int

val pinned_ranges : t -> int
(** Ranges the most recent real GC run pinned (0 without a [gc]). *)

val strategy_label : strategy -> string
