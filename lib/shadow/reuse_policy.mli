(** §3.4 mitigation strategies for {e long-lived} pools (pools reachable
    from globals, or created in [main]), whose shadow pages are never
    released by [pooldestroy] in practice.

    - {!Interval_reuse}: once the pool retains more than a threshold of
      freed-but-protected shadow pages, release them for reuse.  Cheap,
      but any dangling use of those objects afterwards is no longer
      guaranteed to trap — the paper argues the probability is
      unimportant at realistic thresholds (hours of allocations).
    - {!Conservative_gc}: at the same trigger, first run a conservative
      scan over the pool's live objects (cost charged to the machine as
      instructions) to confirm no stale pointers remain, then release.
      Models the paper's "infrequent GC over only the long-lived pools".
    - {!Manual}: never reclaim; the programmer restructured the code
      instead. *)

type strategy =
  | Interval_reuse of { trigger_pages : int }
  | Conservative_gc of { trigger_pages : int; scan_cost_per_object : int }
  | Manual

type t

val create : strategy -> Shadow_pool.t -> t

val after_free : t -> unit
(** Call after each [poolfree] on the managed pool; runs the strategy's
    trigger check and possibly a reclamation.  A no-op once the managed
    pool has been destroyed (the hook may race a [pooldestroy]). *)

val reclaimed_pages : t -> int
(** Cumulative shadow pages released by this policy. *)

val gc_runs : t -> int
val strategy_label : strategy -> string
