type kind =
  | Use_after_free of Vmm.Perm.access
  | Double_free
  | Invalid_free
  | Wild_access of Vmm.Perm.access
  | Out_of_bounds of Vmm.Perm.access
  | Tag_mismatch of Vmm.Perm.access

type object_info = {
  object_id : int;
  size : int;
  offset : int;
  alloc_site : string;
  free_site : string option;
}

type t = {
  kind : kind;
  fault_addr : Vmm.Addr.t;
  object_info : object_info option;
}

exception Violation of t

let kind_label = function
  | Use_after_free Vmm.Perm.Read -> "use-after-free (read)"
  | Use_after_free Vmm.Perm.Write -> "use-after-free (write)"
  | Double_free -> "double free"
  | Invalid_free -> "invalid free"
  | Wild_access Vmm.Perm.Read -> "wild read"
  | Wild_access Vmm.Perm.Write -> "wild write"
  | Out_of_bounds Vmm.Perm.Read -> "out-of-bounds read"
  | Out_of_bounds Vmm.Perm.Write -> "out-of-bounds write"
  | Tag_mismatch Vmm.Perm.Read -> "tag-mismatch (read)"
  | Tag_mismatch Vmm.Perm.Write -> "tag-mismatch (write)"

let all_kinds =
  [
    Use_after_free Vmm.Perm.Read;
    Use_after_free Vmm.Perm.Write;
    Double_free;
    Invalid_free;
    Wild_access Vmm.Perm.Read;
    Wild_access Vmm.Perm.Write;
    Out_of_bounds Vmm.Perm.Read;
    Out_of_bounds Vmm.Perm.Write;
    Tag_mismatch Vmm.Perm.Read;
    Tag_mismatch Vmm.Perm.Write;
  ]

let kind_of_label label =
  List.find_opt (fun k -> String.equal (kind_label k) label) all_kinds

let to_event t =
  Telemetry.Event.Violation { kind = kind_label t.kind; addr = t.fault_addr }

let pp ppf t =
  Format.fprintf ppf "%s at %a" (kind_label t.kind) Vmm.Addr.pp t.fault_addr;
  match t.object_info with
  | None -> ()
  | Some info ->
    Format.fprintf ppf ": object #%d (%d bytes, offset %d) allocated at %s"
      info.object_id info.size info.offset info.alloc_site;
    (match info.free_site with
     | Some site -> Format.fprintf ppf ", freed at %s" site
     | None -> ())

let to_string t = Format.asprintf "%a" pp t
