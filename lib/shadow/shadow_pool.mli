(** Shadow-page detection layered over a pool (§3.3): the full scheme.

    Allocation and deallocation work exactly as in {!Shadow_heap}, with
    the pool as the underlying allocator.  The new capability is
    [pooldestroy]: because Automatic Pool Allocation guarantees no live
    pointers into the pool survive it, {!destroy} returns {e every}
    virtual page the pool ever consumed — canonical and shadow alike —
    to the shared {!Apa.Page_recycler}, bounding virtual-address-space
    growth for pool-bounded data.

    With [reuse_shadow_va] (default true) new shadow ranges are also
    placed on recycled addresses when available, so steady-state virtual
    address consumption is flat.  Setting it false reproduces the
    stricter reading of the paper in which only canonical pages are drawn
    from the free list; the ablation bench shows the difference. *)

type t

val create :
  ?arena_pages:int ->
  ?elem_size:int ->
  ?reuse_shadow_va:bool ->
  ?recycler:Apa.Page_recycler.t ->
  ?slab:Slab.t ->
  ?unmap:(addr:Vmm.Addr.t -> pages:int -> (unit, Vmm.Fault_plan.error) result) ->
  registry:Object_registry.t ->
  Vmm.Machine.t ->
  t
(** [poolinit].  Without a [recycler], destroy unmaps everything instead
    (the paper's "simple solution").  With a [slab], shadow aliases come
    from {!Slab.take} (vectored pre-aliasing, overriding recycled-VA
    placement) and {!destroy} flushes the cache — the slab must be
    private to this pool.  [unmap] issues the ranged release syscall on
    the reclaim path (default: {!Vmm.Syscalls.munmap} on this machine);
    the runtime layer passes one wrapped in [Runtime.Retry], mirroring
    how {!Epoch} takes its [protect]. *)

val alloc : t -> ?site:string -> int -> Vmm.Addr.t
val free : t -> ?site:string -> Vmm.Addr.t -> unit
val size_of : t -> Vmm.Addr.t -> int

val try_alloc :
  t -> ?site:string -> int -> (Vmm.Addr.t, Vmm.Fault_plan.error) result
(** {!alloc} through the typed syscall boundary: [Error] leaves the pool
    unchanged so the caller can retry or fall back. *)

val try_free :
  t -> ?site:string -> Vmm.Addr.t -> (unit, Vmm.Fault_plan.error) result
(** {!free} through the typed syscall boundary: on [Error] the object is
    still live.  Misuse ([Double_free] etc.) still raises
    {!Report.Violation}. *)

val free_unprotected :
  t -> ?site:string -> Vmm.Addr.t -> Object_registry.obj
(** Degraded-mode free that skips page protection (see
    {!Shadow_heap.free_unprotected}); the range is still marked freed so
    {!reclaim_freed_shadow} can recycle it. *)

val free_deferred : t -> ?site:string -> Vmm.Addr.t -> Object_registry.obj
(** Epoch-mode free (see {!Shadow_heap.free_deferred}): validated and
    marked freed, protection and canonical reuse deferred.  The shadow
    range stays out of the {!reclaim_freed_shadow} set until
    {!retire_object} — a quarantined range must not be recycled from
    under its epoch. *)

val retire_object : t -> Object_registry.obj -> unit
(** Finish a {!free_deferred}: canonical block back to the pool and the
    range into the reclaimable freed set.  The epoch calls this (via its
    release callback) only after the range is protected. *)

val alloc_raw : t -> int -> Vmm.Addr.t
(** Pass-through allocation straight from the underlying pool: no shadow
    alias, no registry record, no detection for this object. *)

val dealloc_raw : t -> Vmm.Addr.t -> unit
(** Free a block obtained from {!alloc_raw}. *)

val alloc_elided : t -> int -> Vmm.Addr.t
(** Allocation for a site the static analysis proved Safe: canonical
    page only, no shadow alias, no [mremap] — and therefore no
    detection for this object.  Sound only when every use of the
    site's points-to class has a Safe verdict (see [Minic.Dangling]).
    The block is tracked so {!free_elided} recognises it. *)

val free_elided : t -> Vmm.Addr.t -> bool
(** [free_elided t addr] frees [addr] if it was obtained from
    {!alloc_elided} and returns [true]; returns [false] (doing
    nothing) otherwise, so the caller falls through to the protected
    {!free} path — a double free of an elided block thus still raises
    through the object registry. *)

val elided_allocs : t -> int
(** Allocations served by {!alloc_elided} over the pool's lifetime. *)

val elided_frees : t -> int
(** Frees served by {!free_elided} over the pool's lifetime. *)

val elided_live_blocks : t -> int
(** Elided blocks currently live. *)

val destroy : t -> unit
(** [pooldestroy]: recycle (or unmap) all canonical and shadow ranges and
    drop their diagnostic records. *)

val reclaim_freed_shadow : t -> int
(** §3.4 escape hatch for long-lived pools: release the shadow ranges of
    already-freed objects for reuse {e before} pool destruction, returning
    the number of pages released.  After this, a dangling use of those
    objects is no longer guaranteed to be detected — this is precisely
    the small-probability trade the paper accepts when address space must
    be reclaimed from immortal pools.  Equivalent to
    [reclaim_ranges t (freed_ranges t)]. *)

val freed_ranges : t -> (Vmm.Addr.t * int) list
(** The freed-but-still-protected shadow ranges, sorted by base — the
    candidate set a conservative {!Gc} marks against. *)

val reclaim_ranges : t -> (Vmm.Addr.t * int) list -> int
(** Release a chosen subset of {!freed_ranges} (a {!Gc} passes only the
    ranges its mark phase proved unreferenced), returning pages
    released.  The release syscalls are batched: member ranges are fused
    via {!Vmm.Syscalls.coalesce_ranges} and each merged run costs one
    [unmap] (or one recycler insertion).  A merged run whose unmap fails
    is kept whole — still protected, reclaimable later — never
    half-released.  Ranges not currently in the freed set are skipped. *)

val set_after_free_hook : t -> (unit -> unit) -> unit
(** Install the pool's reclamation hook (typically
    [Reuse_policy.after_free]).  It runs after every completed free —
    eager {!free}/{!try_free}, degraded {!free_unprotected}, {e and}
    epoch {!retire_object} — so a long-lived pool's reuse policy fires
    no matter which free path the scheme uses.  Re-entry is suppressed:
    a reclamation performed by the hook cannot recursively trigger it. *)

val machine : t -> Vmm.Machine.t

val registry : t -> Object_registry.t
(** The diagnostic registry this pool maintains — the live-object
    enumeration a conservative {!Gc} scans heap words through. *)

val is_destroyed : t -> bool
val live_blocks : t -> int
val shadow_pages_live : t -> int
(** Shadow pages currently held (live + freed-retained). *)

val freed_shadow_pages : t -> int
(** Shadow pages held only to keep freed objects trapping. *)
