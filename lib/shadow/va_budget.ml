open Vmm

type level =
  | L_ok
  | L_gc
  | L_tighten
  | L_degrade

let level_label = function
  | L_ok -> "ok"
  | L_gc -> "gc"
  | L_tighten -> "tighten"
  | L_degrade -> "degrade"

let level_rank = function
  | L_ok -> 0
  | L_gc -> 1
  | L_tighten -> 2
  | L_degrade -> 3

type config = {
  budget_pages : int;
  gc_watermark : float;
  tighten_watermark : float;
  degrade_watermark : float;
}

let default_watermarks ~budget_pages =
  {
    budget_pages;
    gc_watermark = 0.50;
    tighten_watermark = 0.75;
    degrade_watermark = 0.90;
  }

type transition = {
  from_level : level;
  to_level : level;
  at_pages_used : int;
}

type t = {
  machine : Machine.t;
  config : config;
  va_pages_used : Telemetry.Metrics.gauge;
  mutable level : level;
  mutable transitions_rev : transition list;
}

let check (c : config) =
  if c.budget_pages <= 0 then invalid_arg "Va_budget: budget_pages <= 0";
  let w name v =
    if Float.is_nan v || v <= 0. || v > 1. then
      invalid_arg (Printf.sprintf "Va_budget: %s outside (0, 1]" name)
  in
  w "gc_watermark" c.gc_watermark;
  w "tighten_watermark" c.tighten_watermark;
  w "degrade_watermark" c.degrade_watermark;
  if c.gc_watermark > c.tighten_watermark
     || c.tighten_watermark > c.degrade_watermark
  then invalid_arg "Va_budget: watermarks must be non-decreasing (gc <= tighten <= degrade)"

let create ?config ~budget_pages machine =
  let config =
    match config with
    | Some c -> { c with budget_pages }
    | None -> default_watermarks ~budget_pages
  in
  check config;
  {
    machine;
    config;
    va_pages_used =
      Telemetry.Metrics.gauge
        (Stats.registry machine.Machine.stats)
        "shadow.va_pages_used";
    level = L_ok;
    transitions_rev = [];
  }

let config t = t.config

(* Per-machine accounting: total VA ever handed out, in pages.  This is
   deliberately monotone — address space is never returned to the bump
   pointer, only recycled — so pressure can only be relieved by reuse
   slowing the growth, never by the fraction dropping. *)
let used_pages t = Machine.va_bytes_used t.machine / Addr.page_size

(* Per-pool accounting: the shadow pages one pool currently holds. *)
let pool_pages pool = Shadow_pool.shadow_pages_live pool

let remaining_pages t = max 0 (t.config.budget_pages - used_pages t)
let used_fraction t = float_of_int (used_pages t) /. float_of_int t.config.budget_pages

let level_of_fraction (c : config) f =
  if f >= c.degrade_watermark then L_degrade
  else if f >= c.tighten_watermark then L_tighten
  else if f >= c.gc_watermark then L_gc
  else L_ok

let level t = t.level

let poll t =
  let pages = used_pages t in
  Telemetry.Metrics.set_gauge t.va_pages_used (float_of_int pages);
  let next = level_of_fraction t.config (used_fraction t) in
  if next <> t.level then begin
    t.transitions_rev <-
      { from_level = t.level; to_level = next; at_pages_used = pages }
      :: t.transitions_rev;
    t.level <- next;
    Telemetry.Sink.emit_always t.machine.Machine.trace (fun () ->
        Telemetry.Event.Va_pressure
          {
            level = level_label next;
            pages_used = pages;
            budget_pages = t.config.budget_pages;
          })
  end;
  next

let transitions t = List.rev t.transitions_rev

(* Time-to-exhaustion projection at the observed burn rate, in seconds.
   [None] means the budget is already exhausted (zero remaining) would
   be wrong — exhausted now is 0 seconds — so [None] is reserved for a
   zero rate, where the budget is never exhausted. *)
let seconds_until_exhaustion t ~pages_per_second =
  if Float.is_nan pages_per_second || pages_per_second < 0. then
    invalid_arg "Va_budget.seconds_until_exhaustion: pages_per_second < 0";
  if pages_per_second = 0. then None
  else
    Some
      (Exhaustion.seconds_until_exhaustion
         ~va_bytes:(float_of_int (remaining_pages t * Addr.page_size))
         ~page_bytes:Addr.page_size ~pages_per_second)

let hours_until_exhaustion t ~pages_per_second =
  Option.map
    (fun s -> s /. 3600.)
    (seconds_until_exhaustion t ~pages_per_second)
