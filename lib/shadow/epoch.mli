(** Epoch-batched deferred protection: a bounded free quarantine whose
    retirement coalesces page protection into ranged syscalls.

    The paper's per-free [mprotect] is the free-side syscall tax.  An
    epoch defers it: {!enqueue} records a validated free without
    touching page permissions, and {!retire} merges every pending shadow
    range ({!Vmm.Syscalls.coalesce_ranges}) and issues {e one} protect
    per merged run.  Canonical blocks are also held back until
    retirement (a true quarantine), so physical reuse cannot outrun
    protection.

    {b Quarantine-window soundness.}  Between {!enqueue} and {!retire}
    the object's pages are still mapped read-write, so the MMU will not
    trap a use.  The side table consulted via {!quarantined_obj} closes
    the window: the owning scheme checks it on every load/store and
    raises the violation in software, with full diagnostics from the
    registry record.  After retirement the MMU path is byte-for-byte the
    non-epoch one.

    {b Failure handling.}  A merged run whose batched protect fails is
    split back into its member objects and each is protected
    individually; objects that still fail are re-enqueued — quarantined
    and unreleased — for the next retirement.  Protection is never
    silently dropped. *)

type t

val create :
  ?max_frees:int ->
  ?max_pages:int ->
  protect:
    (addr:Vmm.Addr.t -> pages:int -> (unit, Vmm.Fault_plan.error) result) ->
  unit ->
  t
(** An empty epoch.  It retires when {!should_retire} — at least
    [max_frees] (default 64) pending frees or [max_pages] (default 256)
    pending pages.  [protect] issues the ranged protection syscall; the
    runtime layer passes one wrapped in [Runtime.Retry] so transient
    faults are absorbed before the split fallback engages. *)

val enqueue : t -> Object_registry.obj -> release:(unit -> unit) -> unit
(** Quarantine a validated free.  [release] finishes the free (canonical
    dealloc + pool bookkeeping) and runs exactly once, after the
    object's shadow range is successfully protected. *)

val should_retire : t -> bool

val retire : t -> unit
(** Protect every pending range with coalesced calls (split-and-retry
    per object on failure) and release the retired entries.  No-op on an
    empty epoch. *)

val abandon : t -> unit
(** Drop all pending work without syscalls — only sound at whole-machine
    teardown, when the quarantined pages themselves are about to vanish.
    Pool destroy must {!retire} instead: recycling is VA bookkeeping, so
    abandoned pages would stay read-write with nobody watching them. *)

val quarantined_obj : t -> Vmm.Addr.t -> Object_registry.obj option
(** The quarantined object whose shadow pages contain [addr], if any —
    the software backstop the owning scheme consults on every access
    while an epoch is open. *)

val pending_frees : t -> int
val pending_pages : t -> int
val retirements : t -> int

val retired_frees : t -> int
(** Frees fully completed (protected + released) by retirement. *)

val protect_calls : t -> int
(** Coalesced ranged protects issued (the batching win's denominator is
    {!retired_frees}). *)

val split_retries : t -> int
(** Per-object fallback protects issued after a failed batched call. *)

val failed_protects : t -> int
(** Objects whose protection failed even split; they remain quarantined
    and pending. *)
