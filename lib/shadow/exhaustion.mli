(** The paper's §3.4 back-of-envelope model of virtual-address-space
    exhaustion when shadow pages are never reused: on a 64-bit system
    with 2^47 user-space bytes, a program burning one 4K page per
    microsecond runs for ~9.5 hours before exhausting addresses. *)

val seconds_until_exhaustion :
  va_bytes:float -> page_bytes:int -> pages_per_second:float -> float
(** Time until [va_bytes] of address space are consumed at
    [pages_per_second] fresh pages of [page_bytes] each.

    Raises [Invalid_argument] rather than returning a nonsense duration
    when [va_bytes < 0.], [page_bytes <= 0], or
    [pages_per_second <= 0.] (a non-allocating program never exhausts
    anything; [infinity] here used to silently poison downstream
    budget arithmetic).  NaN inputs are likewise rejected. *)

val hours_until_exhaustion :
  va_bytes:float -> page_bytes:int -> pages_per_second:float -> float

val paper_example_hours : unit -> float
(** The paper's numbers: 2^47 bytes, 4K pages, one allocation (page) per
    microsecond — about 9.5 hours ("at least 9 hours" in the text). *)

val pages_for_runtime :
  seconds:float -> allocs_per_second:float -> pages_per_alloc:float -> float
(** Address-space pages needed to run for a given time without reuse. *)
