type strategy =
  | Interval_reuse of { trigger_pages : int }
  | Conservative_gc of { trigger_pages : int; scan_cost_per_object : int }
  | Manual

type t = {
  strategy : strategy;
  pool : Shadow_pool.t;
  mutable reclaimed : int;
  mutable gc_runs : int;
}

let create strategy pool = { strategy; pool; reclaimed = 0; gc_runs = 0 }

let reclaim t = t.reclaimed <- t.reclaimed + Shadow_pool.reclaim_freed_shadow t.pool

let after_free t =
  (* A reclamation hook can legitimately fire after its pool is gone
     (e.g. a free on a sibling pool races a pooldestroy); there is
     nothing left to reclaim, so this is a no-op rather than an error. *)
  if Shadow_pool.is_destroyed t.pool then ()
  else
  match t.strategy with
  | Manual -> ()
  | Interval_reuse { trigger_pages } ->
    if Shadow_pool.freed_shadow_pages t.pool >= trigger_pages then reclaim t
  | Conservative_gc { trigger_pages; scan_cost_per_object } ->
    if Shadow_pool.freed_shadow_pages t.pool >= trigger_pages then begin
      (* The conservative scan walks every live object of the pool. *)
      let live = Shadow_pool.live_blocks t.pool in
      Vmm.Stats.count_instructions
        (Shadow_pool.machine t.pool).Vmm.Machine.stats
        (live * scan_cost_per_object);
      t.gc_runs <- t.gc_runs + 1;
      reclaim t
    end

let reclaimed_pages t = t.reclaimed
let gc_runs t = t.gc_runs

let strategy_label = function
  | Interval_reuse { trigger_pages } ->
    Printf.sprintf "interval-reuse(%d pages)" trigger_pages
  | Conservative_gc { trigger_pages; _ } ->
    Printf.sprintf "conservative-gc(%d pages)" trigger_pages
  | Manual -> "manual"
