type strategy =
  | Interval_reuse of { trigger_pages : int }
  | Conservative_gc of { trigger_pages : int; scan_cost_per_object : int }
  | Manual

type t = {
  strategy : strategy;
  pool : Shadow_pool.t;
  gc : Gc.t option;
  mutable trigger_override : int option;
  mutable reclaimed : int;
  mutable gc_runs : int;
}

let create ?gc strategy pool =
  (match gc with
  | Some g when Gc.pool g != pool ->
    invalid_arg "Reuse_policy.create: gc is bound to a different pool"
  | Some _ | None -> ());
  { strategy; pool; gc; trigger_override = None; reclaimed = 0; gc_runs = 0 }

let reclaim t = t.reclaimed <- t.reclaimed + Shadow_pool.reclaim_freed_shadow t.pool

let base_trigger t =
  match t.strategy with
  | Interval_reuse { trigger_pages } | Conservative_gc { trigger_pages; _ } ->
    Some trigger_pages
  | Manual -> None

let trigger_pages t =
  match t.trigger_override with
  | Some p -> Some p
  | None -> base_trigger t

(* VA pressure tightens the policy: reclamation fires earlier.  The
   override never loosens the configured trigger. *)
let set_trigger_pages t pages =
  if pages < 1 then invalid_arg "Reuse_policy.set_trigger_pages: pages < 1";
  match base_trigger t with
  | Some base -> t.trigger_override <- Some (min base pages)
  | None -> ()

let after_free t =
  (* A reclamation hook can legitimately fire after its pool is gone
     (e.g. a free on a sibling pool races a pooldestroy); there is
     nothing left to reclaim, so this is a no-op rather than an error. *)
  if Shadow_pool.is_destroyed t.pool then ()
  else
  match t.strategy with
  | Manual -> ()
  | Interval_reuse _ ->
    (match trigger_pages t with
    | Some trigger when Shadow_pool.freed_shadow_pages t.pool >= trigger ->
      reclaim t
    | Some _ | None -> ())
  | Conservative_gc { scan_cost_per_object; _ } ->
    (match trigger_pages t with
    | Some trigger when Shadow_pool.freed_shadow_pages t.pool >= trigger ->
      (match t.gc with
      | Some g ->
        (* The real mark phase: scan roots and live heap words, pin
           witnessed ranges, release only the proven-unreferenced ones.
           It charges its own scan cost. *)
        let report = Gc.run g in
        t.gc_runs <- t.gc_runs + 1;
        t.reclaimed <- t.reclaimed + report.Gc.reclaimed_pages
      | None ->
        (* No root set attached: the legacy modeled scan — cost charged,
           reclamation unconditional.  Kept for cost-model experiments
           where only the price of the scan matters. *)
        let live = Shadow_pool.live_blocks t.pool in
        Vmm.Stats.count_instructions
          (Shadow_pool.machine t.pool).Vmm.Machine.stats
          (live * scan_cost_per_object);
        t.gc_runs <- t.gc_runs + 1;
        reclaim t)
    | Some _ | None -> ())

let attach t = Shadow_pool.set_after_free_hook t.pool (fun () -> after_free t)

let reclaimed_pages t = t.reclaimed
let gc_runs t = t.gc_runs

let pinned_ranges t =
  match t.gc with Some g -> List.length (Gc.last_pinned g) | None -> 0

let strategy_label = function
  | Interval_reuse { trigger_pages } ->
    Printf.sprintf "interval-reuse(%d pages)" trigger_pages
  | Conservative_gc { trigger_pages; _ } ->
    Printf.sprintf "conservative-gc(%d pages)" trigger_pages
  | Manual -> "manual"
