open Vmm

(* Epoch-batched deferred protection (the CAMP-style quarantine): frees
   are validated and marked immediately but their page protection and
   canonical reuse are deferred into a bounded epoch.  Retirement
   coalesces every pending shadow range and issues one ranged protect
   per merged run instead of one per free.  While an entry is pending
   its pages are still readable, so soundness inside the window comes
   from the [quarantined] side table: the owning scheme consults it on
   every access and raises the violation in software. *)

type entry = {
  obj : Object_registry.obj;
  release : unit -> unit;
      (* canonical dealloc + pool range bookkeeping, run only once the
         range is protected — quarantine also delays physical reuse *)
}

type t = {
  protect : addr:Addr.t -> pages:int -> (unit, Fault_plan.error) result;
  max_frees : int;
  max_pages : int;
  quarantined : (int, Object_registry.obj) Hashtbl.t; (* page index -> obj *)
  mutable pending : entry list; (* newest first *)
  mutable pending_frees : int;
  mutable pending_pages : int;
  mutable retirements : int;
  mutable retired_frees : int;
  mutable protect_calls : int;
  mutable split_retries : int;
  mutable failed_protects : int;
}

let create ?(max_frees = 64) ?(max_pages = 256) ~protect () =
  if max_frees <= 0 then invalid_arg "Epoch.create: max_frees <= 0";
  if max_pages <= 0 then invalid_arg "Epoch.create: max_pages <= 0";
  {
    protect;
    max_frees;
    max_pages;
    quarantined = Hashtbl.create 64;
    pending = [];
    pending_frees = 0;
    pending_pages = 0;
    retirements = 0;
    retired_frees = 0;
    protect_calls = 0;
    split_retries = 0;
    failed_protects = 0;
  }

let iter_obj_pages (o : Object_registry.obj) f =
  let first = Addr.page_index o.Object_registry.shadow_base in
  for p = first to first + o.Object_registry.pages - 1 do
    f p
  done

let enqueue t (obj : Object_registry.obj) ~release =
  iter_obj_pages obj (fun p -> Hashtbl.replace t.quarantined p obj);
  t.pending <- { obj; release } :: t.pending;
  t.pending_frees <- t.pending_frees + 1;
  t.pending_pages <- t.pending_pages + obj.Object_registry.pages

let should_retire t =
  t.pending_frees >= t.max_frees || t.pending_pages >= t.max_pages

let quarantined_obj t addr =
  Hashtbl.find_opt t.quarantined (Addr.page_index addr)

let pending_frees t = t.pending_frees
let pending_pages t = t.pending_pages
let retirements t = t.retirements
let retired_frees t = t.retired_frees
let protect_calls t = t.protect_calls
let split_retries t = t.split_retries
let failed_protects t = t.failed_protects

let range_covers ~base ~pages (o : Object_registry.obj) =
  o.Object_registry.shadow_base >= base
  && o.Object_registry.shadow_base < base + (pages * Addr.page_size)

(* Retire the open epoch: one coalesced protect per merged run.  A run
   whose batched call fails is split back into its member objects and
   each is protected individually; an object whose own protect still
   fails is re-enqueued — it stays quarantined (so detection holds) and
   its canonical block stays unreleased, and the next retirement tries
   again.  Protection is never silently dropped. *)
let retire t =
  if t.pending <> [] then begin
    t.retirements <- t.retirements + 1;
    let entries = List.rev t.pending in
    t.pending <- [];
    t.pending_frees <- 0;
    t.pending_pages <- 0;
    let runs =
      Syscalls.coalesce_ranges
        (List.map
           (fun e ->
             (e.obj.Object_registry.shadow_base, e.obj.Object_registry.pages))
           entries)
    in
    let retired = ref [] in
    List.iter
      (fun (base, pages) ->
        let members =
          List.filter (fun e -> range_covers ~base ~pages e.obj) entries
        in
        t.protect_calls <- t.protect_calls + 1;
        match t.protect ~addr:base ~pages with
        | Ok () -> retired := members @ !retired
        | Error _ ->
          List.iter
            (fun e ->
              t.split_retries <- t.split_retries + 1;
              match
                t.protect ~addr:e.obj.Object_registry.shadow_base
                  ~pages:e.obj.Object_registry.pages
              with
              | Ok () -> retired := e :: !retired
              | Error _ ->
                t.failed_protects <- t.failed_protects + 1;
                t.pending <- e :: t.pending;
                t.pending_frees <- t.pending_frees + 1;
                t.pending_pages <-
                  t.pending_pages + e.obj.Object_registry.pages)
            members)
      runs;
    List.iter
      (fun e ->
        iter_obj_pages e.obj (fun p -> Hashtbl.remove t.quarantined p);
        e.release ();
        t.retired_frees <- t.retired_frees + 1)
      !retired
  end

(* Pool destroy: the pool is about to recycle every shadow range and
   tear down the canonical arena, so pending protection work is moot.
   No syscalls; just drop the bookkeeping. *)
let abandon t =
  t.pending <- [];
  t.pending_frees <- 0;
  t.pending_pages <- 0;
  Hashtbl.reset t.quarantined
