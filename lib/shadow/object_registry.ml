open Vmm

type state =
  | Live
  | Freed of { free_site : string }

type obj = {
  id : int;
  canonical : Addr.t;
  shadow_base : Addr.t;
  pages : int;
  user_addr : Addr.t;
  size : int;
  alloc_site : string;
  mutable state : state;
}

type t = {
  by_page : (int, obj) Hashtbl.t;
  mutable next_id : int;
  mutable live : int;
  mutable freed_retained : int;
}

let create () =
  { by_page = Hashtbl.create 4096; next_id = 0; live = 0; freed_retained = 0 }

let register t ~canonical ~shadow_base ~pages ~user_addr ~size ~alloc_site =
  let obj =
    {
      id = t.next_id;
      canonical;
      shadow_base;
      pages;
      user_addr;
      size;
      alloc_site;
      state = Live;
    }
  in
  t.next_id <- t.next_id + 1;
  t.live <- t.live + 1;
  for i = 0 to pages - 1 do
    Hashtbl.replace t.by_page (Addr.page_index shadow_base + i) obj
  done;
  obj

let find_by_addr t addr = Hashtbl.find_opt t.by_page (Addr.page_index addr)

let find_live_by_user_addr t addr =
  match find_by_addr t addr with
  | Some obj when obj.user_addr = addr && obj.state = Live -> Some obj
  | Some _ | None -> None

let mark_freed t obj ~free_site =
  (match obj.state with
   | Live ->
     t.live <- t.live - 1;
     t.freed_retained <- t.freed_retained + 1
   | Freed _ -> ());
  obj.state <- Freed { free_site }

let forget_range t ~base ~pages =
  for i = 0 to pages - 1 do
    let page = Addr.page_index base + i in
    match Hashtbl.find_opt t.by_page page with
    | Some obj ->
      (match obj.state with
       | Live -> t.live <- t.live - 1
       | Freed _ -> t.freed_retained <- t.freed_retained - 1);
      (* Remove every page of the object to keep counts consistent. *)
      for j = 0 to obj.pages - 1 do
        Hashtbl.remove t.by_page (Addr.page_index obj.shadow_base + j)
      done
    | None -> ()
  done

let live_count t = t.live
let freed_retained_count t = t.freed_retained

(* [by_page] holds one binding per page an object spans; visiting an
   object only from its first page yields each live object exactly
   once. *)
let iter_live t f =
  Hashtbl.iter
    (fun page obj ->
      if obj.state = Live && page = Addr.page_index obj.shadow_base then f obj)
    t.by_page
