(** Diagnostic reports produced when the MMU catches a temporal memory
    error.  This is what the paper's trap handler would print: the bad
    access, plus the allocation and free sites of the object involved. *)

type kind =
  | Use_after_free of Vmm.Perm.access
      (** Load or store through a pointer to a freed object. *)
  | Double_free
      (** [free] of an already-freed object (caught when reading the
          canonical-page header word traps). *)
  | Invalid_free
      (** [free] of an address that was never a live allocation. *)
  | Wild_access of Vmm.Perm.access
      (** Access to an address that no allocation ever covered. *)
  | Out_of_bounds of Vmm.Perm.access
      (** Spatial violation: the address is on a live object's shadow
          page but outside the object's [0, size) extent — caught only
          by the combined spatial+temporal scheme (the paper's
          future-work "comprehensive safety checking tool"). *)
  | Tag_mismatch of Vmm.Perm.access
      (** Temporal violation caught by the pointer-tagging backend: the
          pointer's embedded generation tag no longer matches the
          granule's current generation ([Tagging.Tag_table]).  Same bug
          class as [Use_after_free], different detector. *)

type object_info = {
  object_id : int;
  size : int;
  offset : int;        (** byte offset of the faulting address in the object *)
  alloc_site : string;
  free_site : string option;
}

type t = {
  kind : kind;
  fault_addr : Vmm.Addr.t;
  object_info : object_info option;  (** [None] for wild accesses *)
}

exception Violation of t
(** Raised at the point of detection, in lieu of the paper's SIGSEGV
    handler aborting (or logging and recovering in) the process. *)

val kind_label : kind -> string
(** The canonical label for a violation kind: the {e single} source of
    the stringly-typed kind carried by [Telemetry.Event.Violation]
    events and by fleet crash signatures ([Fleet.Crash]), so traces and
    crash reports can never drift apart.  Labels are distinct across
    kinds and round-trip through {!kind_of_label}. *)

val all_kinds : kind list
(** Every constructor, for exhaustiveness checks and round-tripping. *)

val kind_of_label : string -> kind option
(** Inverse of {!kind_label}; [None] for a string no kind produces. *)

val to_event : t -> Telemetry.Event.kind
(** The telemetry event for this violation — the one constructor every
    tracing site uses, so event kinds come from {!kind_label}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
