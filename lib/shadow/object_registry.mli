(** Diagnostic side table: shadow virtual page -> object record.

    Detection itself needs {e no} software metadata — the page-table
    permissions do all the work, which is the paper's point.  This
    registry exists only so that, once the MMU has trapped, the handler
    can say {e which} object was used after {e which} free (the quality
    of diagnosis Purify-class tools offer).  It is maintained by the
    shadow allocators at alloc/free/recycle time, outside the simulated
    machine, and costs nothing in the cycle model. *)

type state =
  | Live
  | Freed of { free_site : string }

type obj = {
  id : int;
  canonical : Vmm.Addr.t;     (** address the underlying allocator returned *)
  shadow_base : Vmm.Addr.t;   (** first shadow page's base address *)
  pages : int;                (** shadow pages spanned *)
  user_addr : Vmm.Addr.t;     (** address handed to the program *)
  size : int;                 (** usable (requested) size *)
  alloc_site : string;
  mutable state : state;
}

type t

val create : unit -> t

val register :
  t ->
  canonical:Vmm.Addr.t ->
  shadow_base:Vmm.Addr.t ->
  pages:int ->
  user_addr:Vmm.Addr.t ->
  size:int ->
  alloc_site:string ->
  obj

val find_by_addr : t -> Vmm.Addr.t -> obj option
(** Object whose shadow pages contain the address (live or freed). *)

val find_live_by_user_addr : t -> Vmm.Addr.t -> obj option
(** Live object whose user address is exactly this — free-argument
    validation. *)

val mark_freed : t -> obj -> free_site:string -> unit

val forget_range : t -> base:Vmm.Addr.t -> pages:int -> unit
(** Drop records covering a recycled virtual range (pool destroy): once
    a page is legitimately reused, old diagnostics for it are stale. *)

val live_count : t -> int
val freed_retained_count : t -> int
(** Freed objects whose records (and protected pages) are still held. *)

val iter_live : t -> (obj -> unit) -> unit
(** Visit every live object exactly once — the heap-word enumeration a
    conservative mark phase scans.  Order is unspecified. *)
