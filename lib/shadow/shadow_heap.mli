(** The paper's core mechanism (§3.2): one {e shadow} virtual page range
    per allocation, aliased onto the canonical physical pages of an
    unmodified underlying allocator.

    Allocation: the request is grown by one word; the underlying
    allocator places the object at canonical address [a]; a fresh virtual
    range aliasing [a]'s page(s) is created with one [mremap]; the
    canonical address is recorded in the extra word just before the
    returned pointer; the caller receives the {e shadow} address (same
    page offset, different page).

    Deallocation: the header word is read back (this read itself traps on
    a double free), the shadow range is [mprotect]ed to [PROT_NONE], and
    the canonical address is passed to the underlying [free] — so the
    physical memory is reused exactly as in the original program while
    every stale pointer keeps pointing at a protected page forever.

    The underlying allocator never learns any of this happened. *)

type t

val header_bytes : int
(** Extra bytes prepended per allocation (one word = 8). *)

val create :
  ?shadow_placer:(int -> Vmm.Addr.t option) ->
  ?shadow_unplace:(base:Vmm.Addr.t -> pages:int -> unit) ->
  ?on_shadow_range:(base:Vmm.Addr.t -> pages:int -> unit) ->
  ?shadow_alias:
    (src:Vmm.Addr.t -> pages:int -> (Vmm.Addr.t, Vmm.Fault_plan.error) result) ->
  registry:Object_registry.t ->
  allocator:Heap.Allocator_intf.t ->
  Vmm.Machine.t ->
  t
(** [shadow_placer pages] may supply a recycled virtual address at which
    to place the next shadow range ([None] = take fresh address space);
    [shadow_unplace] returns such a range to its donor when the aliasing
    syscall fails after placement (so an injected fault does not leak
    recycled VA); [on_shadow_range] is told about every shadow range
    created, so a pool layer can track it for destroy-time recycling.
    [shadow_alias], when given, replaces the whole aliasing strategy
    (placer included): it must return the base of a fresh read-write
    alias of [src .. src+pages) — this is how {!Slab} pre-aliasing
    plugs in. *)

val malloc : t -> ?site:string -> int -> Vmm.Addr.t
(** Allocate [size] usable bytes; returns the shadow address.  [site] is
    a free-form call-site label kept for diagnostics.  Raises
    {!Vmm.Fault_plan.Syscall_failure} if the aliasing syscall fails
    (only possible under an armed fault plan) — graceful callers use
    {!try_malloc} instead. *)

val try_malloc :
  t -> ?site:string -> int -> (Vmm.Addr.t, Vmm.Fault_plan.error) result
(** One whole-allocation attempt through the {!Vmm.Syscalls} boundary.
    On [Error] nothing is leaked — the canonical block is returned to
    the allocator and any recycled VA to its donor — so the call can
    simply be repeated. *)

val free : t -> ?site:string -> Vmm.Addr.t -> unit
(** Free a shadow address.  Raises {!Report.Violation} with
    [Double_free] / [Invalid_free] diagnostics on misuse, and
    {!Vmm.Fault_plan.Syscall_failure} if the protecting [mprotect]
    fails under an armed fault plan. *)

val try_free :
  t -> ?site:string -> Vmm.Addr.t -> (unit, Vmm.Fault_plan.error) result
(** Like {!free} but the protecting [mprotect] goes through the typed
    boundary: on [Error] the object is {e still live} (nothing freed),
    so the caller can retry or fall back to {!free_unprotected}.
    Violations still raise. *)

val free_deferred : t -> ?site:string -> Vmm.Addr.t -> Object_registry.obj
(** Epoch-mode free: full free-argument validation (double/invalid
    frees raise {!Report.Violation} exactly as {!free}) and the object
    is marked freed, but {e neither} the protecting [mprotect] {e nor}
    the canonical dealloc happens — both are the caller's epoch's
    responsibility ({!Epoch.enqueue} with a release callback built on
    {!release_canonical}).  Until retirement the object's pages remain
    accessible; the epoch's quarantine table is the detection backstop
    for that window. *)

val release_canonical : t -> Object_registry.obj -> unit
(** Second half of {!free_deferred}: return the canonical block to the
    underlying allocator.  Call exactly once, only after the object's
    shadow range is protected (or the pool is being torn down). *)

val free_unprotected : t -> ?site:string -> Vmm.Addr.t -> Object_registry.obj
(** Degraded-mode free: releases the object (registry + allocator)
    {e without} protecting its shadow pages — a later dangling use of
    this object will read reused memory silently instead of trapping.
    Callers record the returned object so the lost guarantee stays
    attributable.  Double/invalid frees still raise {!Report.Violation}
    (the registry state check stands in for the missing page trap). *)

val registry : t -> Object_registry.t
val machine : t -> Vmm.Machine.t

val shadow_pages_created : t -> int
(** Total shadow pages ever created by this heap. *)

val unprotected_frees : t -> int
(** How many frees had to skip page protection ({!free_unprotected}). *)

val size_of : t -> Vmm.Addr.t -> int
(** Usable size of a live object, by shadow address. *)
