(** Virtual-address budget accounting with pressure watermarks.

    The §3.4 exhaustion story needs an actor that notices the slope
    before the cliff: this module tracks how much of a configured VA
    budget a machine has consumed and classifies the fraction into
    pressure levels whose order encodes the endurance response —
    {e first} run the conservative {!Gc}, {e then} tighten the reuse
    thresholds, and only as a last resort degrade the protection ladder
    (the governor's trip input).  Every level crossing is recorded and
    emitted as a [Va_pressure] trace event, and each {!poll} refreshes
    the [shadow.va_pages_used] gauge.

    Accounting is per-machine ({!used_pages}: total VA ever handed out,
    the paper's exhaustion metric — deliberately monotone) with a
    per-pool view ({!pool_pages}) for attribution.  Time-to-exhaustion
    projections reuse the {!Exhaustion} arithmetic. *)

type level =
  | L_ok  (** below every watermark *)
  | L_gc  (** run the conservative GC *)
  | L_tighten  (** also tighten reuse trigger thresholds *)
  | L_degrade  (** also trip the governor's ladder *)

val level_label : level -> string
(** ["ok"], ["gc"], ["tighten"], ["degrade"]. *)

val level_rank : level -> int
(** 0–3, monotone in severity — for ordering assertions. *)

type config = {
  budget_pages : int;  (** the VA budget, in pages *)
  gc_watermark : float;  (** fraction of budget that advises a GC *)
  tighten_watermark : float;
  degrade_watermark : float;
}

val default_watermarks : budget_pages:int -> config
(** 0.50 / 0.75 / 0.90. *)

type transition = {
  from_level : level;
  to_level : level;
  at_pages_used : int;
}

type t

val create : ?config:config -> budget_pages:int -> Vmm.Machine.t -> t
(** Raises [Invalid_argument] on a non-positive budget or watermarks
    outside (0, 1] or out of order.  [budget_pages] overrides the one
    in [config]. *)

val config : t -> config

val used_pages : t -> int
(** Pages of VA the machine has ever handed out
    ({!Vmm.Machine.va_bytes_used}). *)

val pool_pages : Shadow_pool.t -> int
(** Shadow pages one pool currently holds — per-pool attribution. *)

val remaining_pages : t -> int
(** [max 0 (budget - used)]. *)

val used_fraction : t -> float

val level : t -> level
(** Level as of the last {!poll}. *)

val poll : t -> level
(** Re-read the machine, update the [shadow.va_pages_used] gauge,
    record (and emit) a transition if the level changed, and return the
    current level. *)

val transitions : t -> transition list
(** All level changes, oldest first. *)

val seconds_until_exhaustion : t -> pages_per_second:float -> float option
(** Projection of when the {e remaining} budget runs out at the given
    burn rate, via {!Exhaustion.seconds_until_exhaustion}.  [None] for
    a zero rate (never exhausts); [Some 0.] when already exhausted.
    Raises [Invalid_argument] on a negative or NaN rate. *)

val hours_until_exhaustion : t -> pages_per_second:float -> float option
