(** Temporal-error injection scenarios, used by the detection-guarantee
    matrix (the experimental counterpart of the paper's §5 comparison):
    each scenario commits a specific bug under a given scheme, and the
    harness records whether the scheme caught it, missed it silently, or
    crashed without diagnosis. *)

type outcome =
  | Detected of Shadow.Report.t  (** scheme raised a diagnosed violation *)
  | Silent of int
      (** the bad access went through; carries the (stale or reused)
          value that was read *)
  | Crashed of string  (** undiagnosed fault or allocator corruption *)
  | Crashed_degraded of string
      (** same crash shape, but while a {!Runtime.Governed} scheme was
          running below [Full] protection — attributable to a recorded
          degradation window rather than an undiagnosed runtime bug *)

type scenario = {
  sc_name : string;
  sc_description : string;
  inject : Runtime.Scheme.t -> outcome;
}

val read_after_free : scenario
(** Free an object, immediately read through the stale pointer. *)

val write_after_free : scenario
val double_free : scenario
val invalid_free : scenario
(** Free an interior pointer. *)

val read_after_free_with_reuse : scenario
(** Free, then allocate enough same-sized objects that the memory is
    recycled, then read through the stale pointer — the case that
    defeats quarantine heuristics but not the paper's scheme. *)

val dangling_after_many_allocations : int -> scenario
(** Parameterised gap between the free and the stale use. *)

val all : scenario list
(** The temporal scenarios (the paper's scope). *)

val overflow_read : scenario
val overflow_write : scenario

val spatial : scenario list
(** Buffer-overflow scenarios — out of scope for the base scheme, caught
    by the combined spatial+temporal configuration. *)

val outcome_label : outcome -> string

val reclassify : degraded:bool -> outcome -> outcome
(** Re-label a [Crashed] outcome as [Crashed_degraded] when the scheme
    was known to be running degraded at observation time; all other
    outcomes pass through unchanged. *)
