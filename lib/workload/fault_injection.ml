open Runtime.Workload_api

type outcome =
  | Detected of Shadow.Report.t
  | Silent of int
  | Crashed of string
  | Crashed_degraded of string

type scenario = {
  sc_name : string;
  sc_description : string;
  inject : Runtime.Scheme.t -> outcome;
}

let observe thunk =
  match thunk () with
  | v -> Silent v
  | exception Shadow.Report.Violation r -> Detected r
  | exception Vmm.Fault.Trap fault -> Crashed (Vmm.Fault.to_string fault)
  | exception Heap.Freelist_malloc.Heap_corruption msg -> Crashed msg

let read_after_free =
  {
    sc_name = "read-after-free";
    sc_description = "free an object, read it immediately";
    inject =
      (fun scheme ->
        let p = scheme.Runtime.Scheme.malloc ~site:"inject:alloc" 48 in
        store_field scheme p 0 1234;
        scheme.Runtime.Scheme.free ~site:"inject:free" p;
        observe (fun () -> load_field scheme p 0));
  }

let write_after_free =
  {
    sc_name = "write-after-free";
    sc_description = "free an object, write through the stale pointer";
    inject =
      (fun scheme ->
        let p = scheme.Runtime.Scheme.malloc ~site:"inject:alloc" 48 in
        scheme.Runtime.Scheme.free ~site:"inject:free" p;
        observe (fun () ->
            store_field scheme p 0 99;
            0));
  }

let double_free =
  {
    sc_name = "double-free";
    sc_description = "free the same object twice";
    inject =
      (fun scheme ->
        let p = scheme.Runtime.Scheme.malloc ~site:"inject:alloc" 48 in
        scheme.Runtime.Scheme.free ~site:"inject:first-free" p;
        observe (fun () ->
            scheme.Runtime.Scheme.free ~site:"inject:second-free" p;
            0));
  }

let invalid_free =
  {
    sc_name = "invalid-free";
    sc_description = "free an interior pointer of a live object";
    inject =
      (fun scheme ->
        let p = scheme.Runtime.Scheme.malloc ~site:"inject:alloc" 64 in
        observe (fun () ->
            scheme.Runtime.Scheme.free ~site:"inject:bad-free" (p + 16);
            0));
  }

let dangling_after_many_allocations gap =
  {
    sc_name = Printf.sprintf "uaf-after-%d-allocs" gap;
    sc_description =
      "free, allocate until the memory is recycled, then read the stale \
       pointer";
    inject =
      (fun scheme ->
        let p = scheme.Runtime.Scheme.malloc ~site:"inject:victim" 48 in
        store_field scheme p 0 1234;
        scheme.Runtime.Scheme.free ~site:"inject:free" p;
        (* Phase 1: alloc/free churn (of a different size class, so the
           victim's address does not circulate) overflows any quarantine
           and gets the victim's block really released to the allocator.
           Phase 2: live same-class allocations re-occupy the released
           memory — including the victim's — which is what defeats
           delay-reuse heuristics: the stale pointer now points into a
           live object. *)
        for i = 1 to gap do
          let q = scheme.Runtime.Scheme.malloc ~site:"inject:churn" 96 in
          store_field scheme q 0 (4000 + i);
          scheme.Runtime.Scheme.free ~site:"inject:churn-free" q
        done;
        let keep = ref [] in
        for i = 1 to 4 do
          let q = scheme.Runtime.Scheme.malloc ~site:"inject:occupy" 48 in
          store_field scheme q 0 (8000 + i);
          keep := q :: !keep
        done;
        observe (fun () -> load_field scheme p 0));
  }

let read_after_free_with_reuse = dangling_after_many_allocations 1500

let all =
  [
    read_after_free;
    write_after_free;
    double_free;
    invalid_free;
    read_after_free_with_reuse;
  ]

let overflow_read =
  {
    sc_name = "overflow-read";
    sc_description = "read 8 bytes past the end of a live 48-byte object";
    inject =
      (fun scheme ->
        let p = scheme.Runtime.Scheme.malloc ~site:"inject:victim" 48 in
        store_field scheme p 0 7;
        observe (fun () -> scheme.Runtime.Scheme.load (p + 48) ~width:8));
  }

let overflow_write =
  {
    sc_name = "overflow-write";
    sc_description = "write 8 bytes past the end of a live 48-byte object";
    inject =
      (fun scheme ->
        let p = scheme.Runtime.Scheme.malloc ~site:"inject:victim" 48 in
        observe (fun () ->
            scheme.Runtime.Scheme.store (p + 48) ~width:8 1;
            0));
  }

let spatial = [ overflow_read; overflow_write ]

let outcome_label = function
  | Detected r -> "DETECTED: " ^ Shadow.Report.kind_label r.Shadow.Report.kind
  | Silent v -> Printf.sprintf "MISSED (read %d)" v
  | Crashed msg -> "CRASHED: " ^ msg
  | Crashed_degraded msg -> "CRASHED (degraded mode): " ^ msg

let reclassify ~degraded = function
  | Crashed msg when degraded -> Crashed_degraded msg
  | outcome -> outcome

