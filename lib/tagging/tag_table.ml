let granule = 16
let tag_shift = 48
let addr_mask = (1 lsl tag_shift) - 1

(* The pointer carries a wide 15-bit generation (bits 48-62); the
   hardware-realistic check masks it down to [tag_bits].  Wide-equal
   means genuinely fresh; masked-equal-but-wide-unequal is a wraparound
   pass we can attribute exactly. *)
let wide_bits = 15
let wide_mask = (1 lsl wide_bits) - 1

type chunk = {
  id : int;
  base : Vmm.Addr.t;
  size : int;
  alloc_site : string;
  mutable free_site : string option;
  mutable live : bool;
}

type entry = {
  mutable gen : int;  (* full, unwrapped generation of this granule *)
  mutable owner : chunk option;
}

type stats = {
  tag_checks : int;
  tag_faults : int;
  generation_wraps : int;
  wrap_masked_passes : int;
  table_bytes : int;
  live_chunks : int;
}

type t = {
  machine : Vmm.Machine.t;
  tag_bits : int;
  tag_mask : int;
  check_cost : int;
  entry_bytes : int;  (* modeled: bytes of tag storage per granule *)
  table : (int, entry) Hashtbl.t;  (* granule index -> entry *)
  mutable next_id : int;
  mutable tag_checks : int;
  mutable tag_faults : int;
  mutable generation_wraps : int;
  mutable wrap_masked_passes : int;
  mutable granules_touched : int;  (* distinct granules ever entered *)
  mutable live : int;
}

let create ?(tag_bits = 8) ?(check_cost = 4) machine =
  if tag_bits < 1 || tag_bits > wide_bits then
    invalid_arg "Tag_table.create: tag_bits must be in 1..15";
  {
    machine;
    tag_bits;
    tag_mask = (1 lsl tag_bits) - 1;
    check_cost;
    entry_bytes = (tag_bits + 7) / 8;
    table = Hashtbl.create 1024;
    next_id = 0;
    tag_checks = 0;
    tag_faults = 0;
    generation_wraps = 0;
    wrap_masked_passes = 0;
    granules_touched = 0;
    live = 0;
  }

let untag p = p land addr_mask
let tag_of p = (p lsr tag_shift) land wide_mask
let with_tag addr gen = untag addr lor ((gen land wide_mask) lsl tag_shift)
let granule_index addr = addr / granule
let span_indices ~base ~size =
  (granule_index base, granule_index (base + size - 1))

let entry_at t idx = Hashtbl.find_opt t.table idx

let ensure_entry t idx =
  match Hashtbl.find_opt t.table idx with
  | Some e -> e
  | None ->
    let e = { gen = 0; owner = None } in
    Hashtbl.add t.table idx e;
    t.granules_touched <- t.granules_touched + 1;
    e

let charge_check t =
  t.tag_checks <- t.tag_checks + 1;
  Vmm.Stats.count_instructions t.machine.Vmm.Machine.stats t.check_cost

let object_info t ~addr (c : chunk) =
  ignore t;
  {
    Shadow.Report.object_id = c.id;
    size = c.size;
    offset = addr - c.base;
    alloc_site = c.alloc_site;
    free_site = c.free_site;
  }

let violation kind ~addr info =
  Shadow.Report.Violation
    { Shadow.Report.kind; fault_addr = addr; object_info = info }

let register t ~base ~size ~site =
  if size <= 0 then invalid_arg "Tag_table.register: size must be positive";
  if base land (granule - 1) <> 0 then
    (* Freelist payloads are 16-byte aligned (header 16, size classes
       multiples of 16); a misaligned base would let two chunks share a
       granule and corrupt each other's generations. *)
    invalid_arg "Tag_table.register: base not granule-aligned";
  let lo, hi = span_indices ~base ~size in
  let max_gen = ref 0 in
  for idx = lo to hi do
    let e = ensure_entry t idx in
    if e.gen > !max_gen then max_gen := e.gen
  done;
  let c =
    { id = t.next_id; base; size; alloc_site = site; free_site = None;
      live = true }
  in
  t.next_id <- t.next_id + 1;
  for idx = lo to hi do
    let e = ensure_entry t idx in
    e.gen <- !max_gen;
    e.owner <- Some c
  done;
  t.live <- t.live + 1;
  with_tag base !max_gen

let check_access t ptr ~access =
  let addr = untag ptr in
  match entry_at t (granule_index addr) with
  | None | Some { owner = None; _ } -> None
  | Some ({ owner = Some c; _ } as e) ->
    charge_check t;
    let ptr_gen = tag_of ptr in
    if ptr_gen land t.tag_mask <> e.gen land t.tag_mask then begin
      t.tag_faults <- t.tag_faults + 1;
      raise
        (violation (Shadow.Report.Tag_mismatch access) ~addr
           (Some (object_info t ~addr c)))
    end
    else begin
      if ptr_gen <> e.gen land wide_mask then
        (* Masked tags agree but the wide generations differ: the stale
           pointer slipped through a tag-width wraparound.  Real
           hardware misses this access; we let it proceed and count it
           so the differential oracle can attribute the asymmetry. *)
        t.wrap_masked_passes <- t.wrap_masked_passes + 1;
      Some addr
    end

let bump_chunk t (c : chunk) ~site =
  c.live <- false;
  c.free_site <- Some site;
  t.live <- t.live - 1;
  let lo, hi = span_indices ~base:c.base ~size:c.size in
  for idx = lo to hi do
    let e = ensure_entry t idx in
    e.gen <- e.gen + 1;
    if e.gen land t.tag_mask = 0 then
      t.generation_wraps <- t.generation_wraps + 1
  done

let free t ptr ~site =
  let addr = untag ptr in
  charge_check t;
  match entry_at t (granule_index addr) with
  | None | Some { owner = None; _ } ->
    raise (violation Shadow.Report.Invalid_free ~addr None)
  | Some ({ owner = Some c; _ } as e) ->
    if addr <> c.base then
      raise
        (violation Shadow.Report.Invalid_free ~addr
           (Some (object_info t ~addr c)))
    else begin
      let ptr_gen = tag_of ptr in
      let masked_ok = ptr_gen land t.tag_mask = e.gen land t.tag_mask in
      if (not masked_ok) || not c.live then begin
        t.tag_faults <- t.tag_faults + (if masked_ok then 0 else 1);
        raise
          (violation Shadow.Report.Double_free ~addr
             (Some (object_info t ~addr c)))
      end;
      if ptr_gen <> e.gen land wide_mask then
        (* Wrapped stale free: hardware would free the current
           occupant.  Count the miss, then proceed as hardware would. *)
        t.wrap_masked_passes <- t.wrap_masked_passes + 1;
      bump_chunk t c ~site;
      addr
    end

let owns t addr =
  match entry_at t (granule_index (untag addr)) with
  | Some { owner = Some _; _ } -> true
  | None | Some { owner = None; _ } -> false

let release t ~base ~size =
  if size > 0 then begin
    let lo, hi = span_indices ~base ~size in
    for idx = lo to hi do
      match entry_at t idx with
      | None -> ()
      | Some e ->
        (match e.owner with
         | Some c when c.live && c.base >= base && c.base < base + size ->
           c.live <- false;
           t.live <- t.live - 1
         | _ -> ());
        e.owner <- None
    done
  end

let live_chunks t = t.live

let stats t =
  {
    tag_checks = t.tag_checks;
    tag_faults = t.tag_faults;
    generation_wraps = t.generation_wraps;
    wrap_masked_passes = t.wrap_masked_passes;
    table_bytes = t.granules_touched * t.entry_bytes;
    live_chunks = t.live;
  }
