(** Per-granule generation tags: the xTag/LightDE point on the
    overhead-vs-coverage frontier.

    Where the shadow-page scheme buys zero per-access cost with virtual
    address space (every allocation gets a fresh alias, every free an
    [mprotect]), tagging spends a small software check on {e every}
    access and burns no VA at all: allocation embeds a generation tag in
    the pointer's unused high bits, free bumps the generation stored in
    a side table, and a stale pointer's embedded tag no longer matches —
    the check faults deterministically, with instant reuse of both the
    canonical memory and its address.

    The table keyed by 16-byte granule holds the {e full} (unwrapped)
    generation; the hardware-realistic check compares only the low
    [tag_bits] of it against the pointer's tag.  A stale pointer whose
    generation distance is an exact multiple of [2^tag_bits] therefore
    passes the masked check — the scheme's one coverage hole.  Because
    the simulator also carries a wide (15-bit) generation in the pointer
    it can {e attribute} every such pass exactly: the access proceeds
    undetected (as it would on real hardware) but is counted in
    [wrap_masked_passes], which is what lets the differential oracle
    bound asymmetries against shadow paging instead of merely observing
    them.

    Cost model: each check charges [check_cost] instructions (mask,
    shift, tag-byte load, compare).  The modeled table overhead is the
    hardware scheme's — [ceil (tag_bits/8)] bytes per granule ever
    touched; the full-generation and diagnostic storage is simulator
    bookkeeping, outside the cycle model, exactly like
    {!Shadow.Object_registry}. *)

type t

type stats = {
  tag_checks : int;      (** accesses and frees that consulted the table *)
  tag_faults : int;      (** masked-tag mismatches raised as violations *)
  generation_wraps : int;
      (** granule generation increments that crossed a multiple of
          [2^tag_bits] — each opens a wraparound window *)
  wrap_masked_passes : int;
      (** stale accesses that passed the masked check because the
          generation distance was a multiple of [2^tag_bits]: the
          scheme's attributed, bounded misses *)
  table_bytes : int;     (** modeled tag-table overhead, bytes *)
  live_chunks : int;     (** registered chunks not yet freed *)
}

val create : ?tag_bits:int -> ?check_cost:int -> Vmm.Machine.t -> t
(** Fresh table over a machine.  [tag_bits] (default 8, max 15) is the
    width of the hardware-checked tag; [check_cost] (default 4) the
    instructions charged per check.  Granules are 16 bytes — the
    allocator's minimum alignment, so no two blocks share a granule. *)

val tag_shift : int
(** Bit position of the tag field in a tagged pointer (48: below it is
    address, at and above it generation). *)

val untag : Vmm.Addr.t -> Vmm.Addr.t
(** Strip the tag: the canonical address in the low 48 bits.  [untag 0]
    is 0 — null never acquires a tag. *)

val tag_of : Vmm.Addr.t -> int
(** The (wide, 15-bit) generation embedded in a tagged pointer. *)

val register : t -> base:Vmm.Addr.t -> size:int -> site:string -> Vmm.Addr.t
(** Stamp the granules of [[base, base+size)] with ownership and return
    the tagged pointer to hand out.  Granule generations are normalised
    to their maximum over the span, so every pointer tagged before this
    registration compares strictly stale. *)

val check_access : t -> Vmm.Addr.t -> access:Vmm.Perm.access -> Vmm.Addr.t option
(** Validate a (possibly interior) tagged pointer before an access.
    [Some addr] is the untagged address to translate — either the tag
    matched, or the granule is untracked ([None] is never returned for
    tracked granules).  Returns [None] when the address was never
    registered, so the caller falls through to the raw MMU path.
    Raises {!Shadow.Report.Violation} with [Tag_mismatch] on a stale
    tag, carrying the owning chunk's alloc/free sites. *)

val free : t -> Vmm.Addr.t -> site:string -> Vmm.Addr.t
(** Validate a tagged pointer as a free argument, bump every granule
    generation of its chunk, mark it freed, and return the untagged base
    for the underlying allocator.  Raises {!Shadow.Report.Violation}:
    [Invalid_free] for untracked or interior addresses, [Double_free]
    for an already-freed chunk or a stale tag. *)

val owns : t -> Vmm.Addr.t -> bool
(** Whether the (untagged) address falls in a currently tracked granule
    — used by backend ladders to route frees. *)

val release : t -> base:Vmm.Addr.t -> size:int -> unit
(** Forget the granules of a range that is being handed back to an
    untracked allocator (ladder raw reuse, pool destruction): stale
    pointers into it can no longer fault, which the caller must account
    for as a coverage loss. *)

val stats : t -> stats

val live_chunks : t -> int
