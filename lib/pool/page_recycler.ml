open Vmm

type range = { base : Addr.t; pages : int }

type t = {
  mutable ranges : range list;
  mutable available : int;
  mutable recycled : int;
  mutable reused : int;
}

let create () = { ranges = []; available = 0; recycled = 0; reused = 0 }

let put t ~base ~pages =
  if not (Addr.is_page_aligned base) || pages <= 0 then
    invalid_arg
      (Printf.sprintf "Page_recycler.put: bad range 0x%x + %d pages \
                       (ranges are page-aligned and non-empty)" base pages);
  t.ranges <- { base; pages } :: t.ranges;
  t.available <- t.available + pages;
  t.recycled <- t.recycled + pages

(* First fit; a larger range is split and its tail kept.  Free lists here
   are tiny (tens of ranges), so the linear scan is fine. *)
let take t ~pages =
  let rec go acc = function
    | [] -> None
    | r :: rest when r.pages >= pages ->
      let leftover =
        if r.pages > pages then
          [ { base = r.base + (pages * Addr.page_size); pages = r.pages - pages } ]
        else []
      in
      t.ranges <- List.rev_append acc (leftover @ rest);
      t.available <- t.available - pages;
      t.reused <- t.reused + pages;
      Some r.base
    | r :: rest -> go (r :: acc) rest
  in
  go [] t.ranges

let available_pages t = t.available
let total_recycled_pages t = t.recycled
let total_reused_pages t = t.reused
