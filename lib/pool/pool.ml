open Vmm

type reclaim =
  | Recycle of Page_recycler.t
  | Unmap
  | Leak

type range = { base : Addr.t; pages : int }

type t = {
  machine : Machine.t;
  reclaim : reclaim;
  elem_size : int option;
  id : int;
  heap : Heap.Freelist_malloc.t;
  owned : range list ref; (* canonical ranges handed to [heap] *)
  mutable destroyed : bool;
}

(* Process-wide pool numbering, so traces can correlate create/destroy
   across machines; atomic so pools can be created from several domains
   at once. *)
let next_id = Atomic.make 0

let take_pages machine reclaim owned pages =
  let base =
    match reclaim with
    | Recycle recycler ->
      (match Page_recycler.take recycler ~pages with
       | Some base ->
         (* Fresh backing severs stale aliases and clears protections. *)
         Kernel.mmap_fixed machine ~addr:base ~pages;
         base
       | None -> Kernel.mmap machine ~pages)
    | Unmap | Leak -> Kernel.mmap machine ~pages
  in
  owned := { base; pages } :: !owned;
  base

let create ?(arena_pages = 16) ?elem_size ~reclaim machine =
  let owned = ref [] in
  let page_source pages = take_pages machine reclaim owned pages in
  let heap = Heap.Freelist_malloc.create ~arena_pages ~page_source machine in
  let id = Atomic.fetch_and_add next_id 1 + 1 in
  Telemetry.Sink.emit_always machine.Machine.trace (fun () ->
      Telemetry.Event.Pool_create { pool = id; elem_size });
  { machine; reclaim; elem_size; id; heap; owned; destroyed = false }

let check_usable t name =
  if t.destroyed then
    invalid_arg (Printf.sprintf "Pool.%s: pool already destroyed" name)

let alloc t size =
  check_usable t "alloc";
  Heap.Freelist_malloc.alloc t.heap size

let dealloc t a =
  check_usable t "dealloc";
  Heap.Freelist_malloc.dealloc t.heap a

let size_of t a = Heap.Freelist_malloc.size_of t.heap a

let destroy t =
  check_usable t "destroy";
  t.destroyed <- true;
  Telemetry.Sink.emit_always t.machine.Machine.trace (fun () ->
      Telemetry.Event.Pool_destroy { pool = t.id });
  let reclaim_range { base; pages } =
    match t.reclaim with
    | Recycle recycler -> Page_recycler.put recycler ~base ~pages
    | Unmap -> Kernel.munmap t.machine ~addr:base ~pages
    | Leak -> ()
  in
  List.iter reclaim_range !(t.owned);
  t.owned := []

let is_destroyed t = t.destroyed
let id t = t.id
let live_blocks t = Heap.Freelist_malloc.live_blocks t.heap

let owned_pages t =
  List.fold_left (fun acc r -> acc + r.pages) 0 !(t.owned)

let elem_size t = t.elem_size

let as_allocator t =
  {
    Heap.Allocator_intf.name = "pool";
    alloc = alloc t;
    dealloc = dealloc t;
    size_of = size_of t;
    live_blocks = (fun () -> live_blocks t);
    live_bytes = (fun () -> Heap.Freelist_malloc.live_bytes t.heap);
  }
