(** The Automatic-Pool-Allocation run-time: [poolinit] / [poolalloc] /
    [poolfree] / [pooldestroy].

    Each pool is a distinct sub-heap (internally a {!Heap.Freelist_malloc}
    drawing pages from the pool's page source), so that when the compiler
    has proved a pool unreachable, {!destroy} can hand {e all} of its
    canonical virtual pages back to the shared {!Page_recycler} for
    reuse.  (Shadow ranges for the pool's objects are owned and recycled
    by {!Shadow.Shadow_pool}, which layers on top.)

    A pool with no recycler (or one created with [reclaim = Unmap]) models
    the paper's alternatives: fresh mmap for everything, or explicit
    munmap at destroy. *)

type t

type reclaim =
  | Recycle of Page_recycler.t
      (** push all pages to the shared free list at destroy (paper §3.3) *)
  | Unmap  (** munmap everything at destroy (the paper's "simple solution") *)
  | Leak   (** do nothing at destroy — the no-reuse baseline *)

val create :
  ?arena_pages:int -> ?elem_size:int -> reclaim:reclaim -> Vmm.Machine.t -> t
(** [poolinit].  [elem_size] is the type-driven hint APA passes (recorded
    for diagnostics; allocation sizes may still vary).  [arena_pages]
    sizes each canonical arena (default 16 — pools are smaller than the
    global heap). *)

val alloc : t -> int -> Vmm.Addr.t
(** [poolalloc].  Raises [Invalid_argument] on a destroyed pool. *)

val dealloc : t -> Vmm.Addr.t -> unit
(** [poolfree]: returns the block to the pool's internal free lists (and
    thus its physical memory to reuse) but never returns pages to the
    system before {!destroy}. *)

val size_of : t -> Vmm.Addr.t -> int

val destroy : t -> unit
(** [pooldestroy]: reclaim every owned virtual range per the pool's
    [reclaim] policy and mark the pool unusable. *)

val is_destroyed : t -> bool

val id : t -> int
(** Process-wide pool number; appears in pool-create/destroy trace
    events. *)

val live_blocks : t -> int
val owned_pages : t -> int
(** Canonical virtual pages currently owned. *)

val elem_size : t -> int option
val as_allocator : t -> Heap.Allocator_intf.t
