(** A domain-sharded server farm: the paper's fork-per-connection
    daemons scaled across OCaml domains.

    Each shard is a domain running its share of the connections, every
    connection a fresh machine + scheme ({!Runtime.Process}), so shards
    share {e nothing} on the hot path: per-shard metrics registries and
    latency histograms are merged once at join ({!Telemetry.Metrics.merge}).

    Determinism contract: a connection's behaviour depends only on its
    index, so the merged totals — detections, syscalls, the latency
    histogram — are identical for any (shards, policy) at a fixed seed;
    under {!Scheduler.Round_robin} the per-shard assignment and the
    makespan are deterministic too.  Time is simulated cycles: the
    farm's makespan is the busiest shard's cycle total, so measured
    speedup reflects the sharding itself, not the host's core count. *)

type totals = {
  connections : int;  (** connections served, summed over shards *)
  detections : int;   (** children that died on a caught violation *)
  syscalls : int;     (** mmap + munmap + mremap + mprotect + dummy *)
  max_va_bytes : int; (** largest per-connection VA footprint seen *)
  stats : Vmm.Stats.snapshot;  (** merged per-child event counters *)
}

type shard_report = {
  shard : int;
  served : int;
  busy_cycles : float;
  shard_detections : int;
}

type result = {
  shards : int;
  policy : Scheduler.policy;
  seed : int;
  totals : totals;
  makespan_cycles : float;
      (** max over shards of per-shard simulated busy cycles *)
  throughput : float;
      (** connections per million simulated cycles of makespan *)
  latency : Harness.Latency.quantiles;
      (** percentiles of the merged per-connection cycles histogram *)
  per_shard : shard_report list;
  registry : Telemetry.Metrics.t;
      (** the merged registry: "farm.*" plus the children's "vmm.*" *)
}

val run :
  ?policy:Scheduler.policy ->
  ?seed:int ->
  ?probe_every:int ->
  make_scheme:(shard:int -> unit -> Runtime.Scheme.t) ->
  handler:(int -> Runtime.Scheme.t -> unit) ->
  shards:int ->
  connections:int ->
  unit ->
  result
(** Serve [connections] across [shards] domains.  [probe_every] > 0
    appends a malloc/store/free/load-after-free probe to every k-th
    connection (by index, so probed connections are the same set at any
    shard count): detecting schemes record them as detections, others
    silently read reused memory.  Default policy {!Scheduler.Round_robin},
    seed [0x5eed], no probes. *)

val run_server :
  ?policy:Scheduler.policy ->
  ?seed:int ->
  ?probe_every:int ->
  ?config:Harness.Experiment.config ->
  ?connections:int ->
  shards:int ->
  Workload.Spec.server ->
  result
(** {!run} over one of the paper's daemons, a fresh
    {!Harness.Experiment.make_scheme} per connection (default
    [Ours]; connections default to the server's own default). *)
