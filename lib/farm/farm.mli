(** A domain-sharded server farm: the paper's fork-per-connection
    daemons scaled across OCaml domains.

    Each shard is a domain running its share of the connections, every
    connection a fresh machine + scheme ({!Runtime.Process}), so shards
    share {e nothing} on the hot path: per-shard metrics registries and
    latency histograms are merged once at join ({!Telemetry.Metrics.merge}).

    Determinism contract: a connection's behaviour depends only on its
    index, so the merged totals — detections, syscalls, the latency
    histogram — are identical for any (shards, policy) at a fixed seed;
    under {!Scheduler.Round_robin} the per-shard assignment and the
    makespan are deterministic too.  Time is simulated cycles: the
    farm's makespan is the busiest shard's cycle total, so measured
    speedup reflects the sharding itself, not the host's core count. *)

type totals = {
  connections : int;  (** connections served, summed over shards *)
  detections : int;   (** children that died on a caught violation *)
  syscalls : int;     (** mmap + munmap + mremap + mprotect + dummy *)
  max_va_bytes : int; (** largest per-connection VA footprint seen *)
  stats : Vmm.Stats.snapshot;  (** merged per-child event counters *)
}

type shard_report = {
  shard : int;
  served : int;
  busy_cycles : float;
  shard_detections : int;
  shard_crashes : int;  (** crash reports recorded by this shard's sink *)
}

type result = {
  shards : int;
  policy : Scheduler.policy;
  seed : int;
  totals : totals;
  makespan_cycles : float;
      (** max over shards of per-shard simulated busy cycles *)
  throughput : float;
      (** connections per million simulated cycles of makespan *)
  latency : Harness.Latency.quantiles;
      (** percentiles of the merged per-connection cycles histogram *)
  per_shard : shard_report list;
  registry : Telemetry.Metrics.t;
      (** the merged registry: "farm.*", the children's "vmm.*", and the
          "fleet.*" crash counters of {!crashes} *)
  crashes : Fleet.Crash.fleet_report;
      (** per-shard crash sinks merged at join — ranked, deduped by
          stack signature, deterministic for any (shards, policy) *)
  traces : (int * Telemetry.Event.t list) list;
      (** per-shard [(shard, events)] when [trace_capacity] > 0 (feed to
          {!Telemetry.Export.chrome_trace_grouped}); [[]] otherwise *)
}

val probe_site : probe_sites:int -> probe_every:int -> int -> int
(** The injection site the probe appended to connection [conn]
    exercises (0 when [probe_sites] is 1).  A pure function of the
    connection index, exported so callers — the report CLI, the bench
    validator — can compute the exact expected site population of a
    seeded run. *)

val run :
  ?policy:Scheduler.policy ->
  ?seed:int ->
  ?probe_every:int ->
  ?probe_sites:int ->
  ?recover:bool ->
  ?trace_capacity:int ->
  make_scheme:(shard:int -> trace:Telemetry.Sink.t -> unit -> Runtime.Scheme.t) ->
  handler:(int -> Runtime.Scheme.t -> unit) ->
  shards:int ->
  connections:int ->
  unit ->
  result
(** Serve [connections] across [shards] domains.

    [probe_every] > 0 appends a dangling-use probe to every k-th
    connection (by index, so probed connections are the same set at any
    shard count): detecting schemes record them as detections, others
    silently read reused memory.  [probe_sites] (default 1) spreads the
    probes geometrically over that many distinct injection sites, each
    with its own bug flavour (use-after-free read/write, double free) —
    the seeded workload for the fleet crash dashboard.

    [recover] wraps every connection's scheme in
    {!Runtime.Schemes.recoverable}: violations are recorded in the
    shard's crash sink and the connection {e finishes}; [detections]
    stays 0 because no child dies.  Without it, the report a dying
    child was caught with is recorded instead, so the crash pipeline
    sees every violation in both modes.

    [trace_capacity] > 0 attaches one event ring of that capacity per
    shard, with timestamps offset to the shard's busy-cycle clock so
    each shard renders as a monotone trace lane.

    [make_scheme] receives the serving shard and the shard's trace sink
    (a disabled sink when tracing is off).  Default policy
    {!Scheduler.Round_robin}, seed [0x5eed], no probes. *)

val run_server :
  ?policy:Scheduler.policy ->
  ?seed:int ->
  ?probe_every:int ->
  ?probe_sites:int ->
  ?recover:bool ->
  ?trace_capacity:int ->
  ?config:Harness.Experiment.config ->
  ?connections:int ->
  shards:int ->
  Workload.Spec.server ->
  result
(** {!run} over one of the paper's daemons, a fresh
    {!Harness.Experiment.make_scheme} per connection (default
    [Ours]; connections default to the server's own default). *)
