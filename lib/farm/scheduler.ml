type policy = Round_robin | Work_steal

let policy_label = function
  | Round_robin -> "round-robin"
  | Work_steal -> "work-steal"

let policy_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "work-steal" | "steal" -> Some Work_steal
  | _ -> None

type t = {
  policy : policy;
  order : int array; (* seeded shuffle of [0, connections) *)
  queues : int array array; (* the round-robin deal of [order] *)
  cursors : int array; (* Round_robin: per-shard position, shard-local *)
  next : int Atomic.t; (* Work_steal: shared cursor into [order] *)
}

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Workload.Prng.below rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let create ~policy ~seed ~shards ~connections =
  if shards <= 0 then invalid_arg "Scheduler.create: shards must be positive";
  if connections < 0 then invalid_arg "Scheduler.create: negative connections";
  let order = Array.init connections (fun i -> i) in
  shuffle (Workload.Prng.create ~seed) order;
  let queues =
    Array.init shards (fun s ->
        (* shard s takes positions s, s+shards, s+2*shards, ... *)
        let n = max 0 ((connections - s + shards - 1) / shards) in
        Array.init n (fun k -> order.(s + (k * shards))))
  in
  { policy; order; queues; cursors = Array.make shards 0; next = Atomic.make 0 }

let next t ~shard =
  match t.policy with
  | Round_robin ->
    let c = t.cursors.(shard) in
    let queue = t.queues.(shard) in
    if c >= Array.length queue then None
    else begin
      t.cursors.(shard) <- c + 1;
      Some queue.(c)
    end
  | Work_steal ->
    let i = Atomic.fetch_and_add t.next 1 in
    if i >= Array.length t.order then None else Some t.order.(i)

let assignment t = Array.map Array.copy t.queues
