module Metrics = Telemetry.Metrics

type totals = {
  connections : int;
  detections : int;
  syscalls : int;
  max_va_bytes : int;
  stats : Vmm.Stats.snapshot;
}

type shard_report = {
  shard : int;
  served : int;
  busy_cycles : float;
  shard_detections : int;
  shard_crashes : int;
}

type result = {
  shards : int;
  policy : Scheduler.policy;
  seed : int;
  totals : totals;
  makespan_cycles : float;
  throughput : float;
  latency : Harness.Latency.quantiles;
  per_shard : shard_report list;
  registry : Metrics.t;
  crashes : Fleet.Crash.fleet_report;
  traces : (int * Telemetry.Event.t list) list;
}

(* Which injection site a probed connection exercises.  Derived from the
   probe ordinal alone, so the site multiset over any connection range
   is independent of how connections land on shards; the geometric
   split (half the probes at site 0, a quarter at site 1, ...) gives
   the fleet dashboard a non-trivial ranking to sort. *)
let probe_site ~probe_sites ~probe_every conn =
  let q = conn / probe_every in
  let rec go i q =
    if i >= probe_sites - 1 || q land 1 = 1 then i else go (i + 1) (q asr 1)
  in
  go 0 q

(* A deterministic dangling-use probe appended to every [probe_every]-th
   connection.  With one probe site this is the original byte-stable
   malloc/store/free/load-after-free sequence at site "farm:probe";
   with more sites each probed connection picks a site and the site
   picks the bug flavour (use-after-free read / write / double free).
   Detecting schemes raise (or, wrapped in [Schemes.recoverable],
   report and continue); non-detecting schemes always get the silent
   dangling read — the write and double-free flavours would corrupt a
   real freelist rather than fault, which is the paper's point but not
   a survivable farm experiment. *)
let probed_handler ~probe_every ~probe_sites handler conn
    (scheme : Runtime.Scheme.t) =
  handler conn scheme;
  if probe_every > 0 && conn mod probe_every = 0 then
    if probe_sites <= 1 then begin
      let a = scheme.Runtime.Scheme.malloc ~site:"farm:probe" 64 in
      scheme.Runtime.Scheme.store a ~width:8 (conn + 1);
      scheme.Runtime.Scheme.free ~site:"farm:probe" a;
      ignore (scheme.Runtime.Scheme.load a ~width:8)
    end
    else begin
      let site = probe_site ~probe_sites ~probe_every conn in
      let alloc_site = Printf.sprintf "farm.c:1%02d" site in
      let free_site = Printf.sprintf "farm.c:2%02d" site in
      let a = scheme.Runtime.Scheme.malloc ~site:alloc_site 64 in
      scheme.Runtime.Scheme.store a ~width:8 (conn + 1);
      if scheme.Runtime.Scheme.guarantees_detection then
        match site mod 3 with
        | 0 ->
          scheme.Runtime.Scheme.free ~site:free_site a;
          ignore (scheme.Runtime.Scheme.load a ~width:8)
        | 1 ->
          scheme.Runtime.Scheme.free ~site:free_site a;
          scheme.Runtime.Scheme.store a ~width:8 0xdead
        | _ ->
          scheme.Runtime.Scheme.free ~site:free_site a;
          scheme.Runtime.Scheme.free ~site:free_site a
      else begin
        scheme.Runtime.Scheme.free ~site:free_site a;
        ignore (scheme.Runtime.Scheme.load a ~width:8)
      end
    end

type shard_outcome = {
  o_shard : int;
  o_served : int;
  o_busy : float;
  o_registry : Metrics.t;
  o_crashes : Fleet.Crash.sink;
  o_trace : Telemetry.Event.t list;
}

(* Everything a shard touches is shard-local: its own registry, its own
   machines (one per connection), its own crash sink and trace ring,
   its own scheduler cursor.  The only cross-domain traffic is the
   work-steal cursor (atomic) — no locks on the connection hot path. *)
let run_shard ~scheduler ~shard ~make_scheme ~handler ~recover ~trace_capacity =
  let registry = Metrics.create () in
  let connections = Metrics.counter registry "farm.connections" in
  let detections = Metrics.counter registry "farm.detections" in
  let max_va = Metrics.gauge registry "farm.max_va_bytes" in
  (* The endurance gauges, in pages: per-connection machines are
     short-lived here, so the farm view is the worst connection's VA
     footprint (merge keeps the max across shards).  Registering the
     reclaim/pin gauges up front keeps the exporter's gauge set stable
     whether or not a GC ever runs in this process. *)
  let shadow_va = Metrics.gauge registry "shadow.va_pages_used" in
  let (_ : Metrics.gauge) = Metrics.gauge registry "shadow.va_pages_reclaimed" in
  let (_ : Metrics.gauge) = Metrics.gauge registry "shadow.gc_pinned_ranges" in
  let latency =
    Metrics.histogram
      ~buckets_per_octave:Harness.Latency.buckets_per_octave registry
      "farm.latency_cycles"
  in
  let crash_sink = Fleet.Crash.create_sink () in
  let trace =
    if trace_capacity > 0 then Telemetry.Sink.create ~capacity:trace_capacity ()
    else Telemetry.Sink.disabled ()
  in
  let busy = ref 0.0 in
  let served = ref 0 in
  (* The scheme serving the connection in flight, for crash attribution
     (its name and its machine's clock). *)
  let current : Runtime.Scheme.t option ref = ref None in
  let record_crash ~at_cycles report =
    match !current with
    | None -> ()
    | Some scheme ->
      Fleet.Crash.record crash_sink
        (Fleet.Crash.of_violation ~scheme:scheme.Runtime.Scheme.name ~shard
           ~at_cycles report)
  in
  (* Crash timestamps use the connection's own machine clock: it counts
     only that connection's work, so a report's [at_cycles] is the same
     wherever the connection is scheduled. *)
  let on_report report =
    let at =
      match !current with
      | Some s -> int_of_float (Vmm.Machine.cycles s.Runtime.Scheme.machine)
      | None -> 0
    in
    record_crash ~at_cycles:at report
  in
  let make_conn_scheme () =
    let scheme = make_scheme ~shard ~trace () in
    (* Each connection is a fresh machine whose clock restarts at 0;
       offsetting by the shard's accumulated busy cycles keeps the
       shard's trace lane monotone. *)
    let offset = !busy in
    let m = scheme.Runtime.Scheme.machine in
    Telemetry.Sink.set_clock trace (fun () -> offset +. Vmm.Machine.cycles m);
    let scheme =
      if recover then Runtime.Schemes.recoverable ~on_report scheme else scheme
    in
    current := Some scheme;
    scheme
  in
  let rec loop () =
    match Scheduler.next scheduler ~shard with
    | None -> ()
    | Some conn ->
      let r =
        Runtime.Process.run_connection ~make_scheme:make_conn_scheme
          ~handler:(handler conn)
      in
      (* In recoverable mode violations never unwind, so [detection]
         stays [None] and every report arrived via [on_report]; here we
         capture the abort-mode counterpart, stamped with the child's
         cycles at death. *)
      (match r.Runtime.Process.detection with
       | Some report ->
         record_crash ~at_cycles:(int_of_float r.Runtime.Process.cycles) report
       | None -> ());
      current := None;
      incr served;
      busy := !busy +. r.Runtime.Process.cycles;
      Metrics.incr connections;
      if r.Runtime.Process.detection <> None then Metrics.incr detections;
      Telemetry.Histogram.observe latency r.Runtime.Process.cycles;
      let va = float_of_int r.Runtime.Process.va_bytes in
      if va > Metrics.gauge_value max_va then Metrics.set_gauge max_va va;
      let va_pages =
        float_of_int (r.Runtime.Process.va_bytes / Vmm.Addr.page_size)
      in
      if va_pages > Metrics.gauge_value shadow_va then
        Metrics.set_gauge shadow_va va_pages;
      Vmm.Stats.accumulate registry r.Runtime.Process.stats;
      loop ()
  in
  loop ();
  {
    o_shard = shard;
    o_served = !served;
    o_busy = !busy;
    o_registry = registry;
    o_crashes = crash_sink;
    o_trace = Telemetry.Sink.events trace;
  }

let counter_value registry name =
  Metrics.counter_value (Metrics.counter registry name)

let run ?(policy = Scheduler.Round_robin) ?(seed = 0x5eed) ?(probe_every = 0)
    ?(probe_sites = 1) ?(recover = false) ?(trace_capacity = 0) ~make_scheme
    ~handler ~shards ~connections () =
  let scheduler = Scheduler.create ~policy ~seed ~shards ~connections in
  let handler = probed_handler ~probe_every ~probe_sites handler in
  let run_shard shard =
    run_shard ~scheduler ~shard ~make_scheme ~handler ~recover ~trace_capacity
  in
  let outcomes =
    if shards = 1 then [| run_shard 0 |]
    else
      Array.init shards (fun shard -> Domain.spawn (fun () -> run_shard shard))
      |> Array.map Domain.join
  in
  let registry = Metrics.create () in
  Array.iter (fun o -> Metrics.merge ~into:registry o.o_registry) outcomes;
  let crashes =
    Fleet.Crash.merge
      (Array.to_list (Array.map (fun o -> o.o_crashes) outcomes))
  in
  Fleet.Crash.register_metrics registry crashes;
  let traces =
    if trace_capacity > 0 then
      Array.to_list (Array.map (fun o -> (o.o_shard, o.o_trace)) outcomes)
    else []
  in
  let stats = Vmm.Stats.snapshot (Vmm.Stats.create ~registry ()) in
  let totals =
    {
      connections = counter_value registry "farm.connections";
      detections = counter_value registry "farm.detections";
      syscalls = Vmm.Stats.total_syscalls stats;
      max_va_bytes =
        int_of_float (Metrics.gauge_value (Metrics.gauge registry "farm.max_va_bytes"));
      stats;
    }
  in
  (* The farm is one simulated parallel machine: its makespan is the
     busiest shard's simulated cycles, so throughput scales with shard
     count deterministically (no wall-clock, no host-core dependence). *)
  let makespan =
    Array.fold_left (fun acc o -> Float.max acc o.o_busy) 0.0 outcomes
  in
  let throughput =
    if makespan > 0.0 then float_of_int totals.connections /. (makespan /. 1e6)
    else 0.0
  in
  let latency =
    Harness.Latency.quantiles_of_histogram
      (Metrics.histogram registry "farm.latency_cycles")
  in
  let per_shard =
    Array.to_list
      (Array.map
         (fun o ->
           {
             shard = o.o_shard;
             served = o.o_served;
             busy_cycles = o.o_busy;
             shard_detections = counter_value o.o_registry "farm.detections";
             shard_crashes = Fleet.Crash.sink_count o.o_crashes;
           })
         outcomes)
  in
  {
    shards;
    policy;
    seed;
    totals;
    makespan_cycles = makespan;
    throughput;
    latency;
    per_shard;
    registry;
    crashes;
    traces;
  }

let run_server ?policy ?seed ?probe_every ?probe_sites ?recover ?trace_capacity
    ?(config = Harness.Experiment.ours) ?connections ~shards
    (server : Workload.Spec.server) =
  let connections =
    Option.value connections ~default:server.Workload.Spec.s_default_connections
  in
  run ?policy ?seed ?probe_every ?probe_sites ?recover ?trace_capacity
    ~make_scheme:(fun ~shard:_ ~trace () ->
      Harness.Experiment.make_scheme config ~trace ())
    ~handler:server.Workload.Spec.handler ~shards ~connections ()
