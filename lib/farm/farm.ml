module Metrics = Telemetry.Metrics

type totals = {
  connections : int;
  detections : int;
  syscalls : int;
  max_va_bytes : int;
  stats : Vmm.Stats.snapshot;
}

type shard_report = {
  shard : int;
  served : int;
  busy_cycles : float;
  shard_detections : int;
}

type result = {
  shards : int;
  policy : Scheduler.policy;
  seed : int;
  totals : totals;
  makespan_cycles : float;
  throughput : float;
  latency : Harness.Latency.quantiles;
  per_shard : shard_report list;
  registry : Metrics.t;
}

(* A deterministic dangling-use probe appended to every [probe_every]-th
   connection: malloc, store, free, load-after-free.  Detecting schemes
   raise (the child dies, Process.run_connection records it); others
   silently read the reused memory, exactly the paper's contrast. *)
let probed_handler ~probe_every handler conn (scheme : Runtime.Scheme.t) =
  handler conn scheme;
  if probe_every > 0 && conn mod probe_every = 0 then begin
    let a = scheme.Runtime.Scheme.malloc ~site:"farm:probe" 64 in
    scheme.Runtime.Scheme.store a ~width:8 (conn + 1);
    scheme.Runtime.Scheme.free ~site:"farm:probe" a;
    ignore (scheme.Runtime.Scheme.load a ~width:8)
  end

type shard_outcome = {
  o_shard : int;
  o_served : int;
  o_busy : float;
  o_registry : Metrics.t;
}

(* Everything a shard touches is shard-local: its own registry, its own
   machines (one per connection), its own scheduler cursor.  The only
   cross-domain traffic is the work-steal cursor (atomic) — no locks on
   the connection hot path. *)
let run_shard ~scheduler ~shard ~make_scheme ~handler =
  let registry = Metrics.create () in
  let connections = Metrics.counter registry "farm.connections" in
  let detections = Metrics.counter registry "farm.detections" in
  let max_va = Metrics.gauge registry "farm.max_va_bytes" in
  let latency =
    Metrics.histogram
      ~buckets_per_octave:Harness.Latency.buckets_per_octave registry
      "farm.latency_cycles"
  in
  let busy = ref 0.0 in
  let served = ref 0 in
  let rec loop () =
    match Scheduler.next scheduler ~shard with
    | None -> ()
    | Some conn ->
      let r =
        Runtime.Process.run_connection ~make_scheme:(make_scheme ~shard)
          ~handler:(handler conn)
      in
      incr served;
      busy := !busy +. r.Runtime.Process.cycles;
      Metrics.incr connections;
      if r.Runtime.Process.detection <> None then Metrics.incr detections;
      Telemetry.Histogram.observe latency r.Runtime.Process.cycles;
      let va = float_of_int r.Runtime.Process.va_bytes in
      if va > Metrics.gauge_value max_va then Metrics.set_gauge max_va va;
      Vmm.Stats.accumulate registry r.Runtime.Process.stats;
      loop ()
  in
  loop ();
  { o_shard = shard; o_served = !served; o_busy = !busy; o_registry = registry }

let counter_value registry name =
  Metrics.counter_value (Metrics.counter registry name)

let run ?(policy = Scheduler.Round_robin) ?(seed = 0x5eed) ?(probe_every = 0)
    ~make_scheme ~handler ~shards ~connections () =
  let scheduler = Scheduler.create ~policy ~seed ~shards ~connections in
  let handler = probed_handler ~probe_every handler in
  let outcomes =
    if shards = 1 then [| run_shard ~scheduler ~shard:0 ~make_scheme ~handler |]
    else
      Array.init shards (fun shard ->
          Domain.spawn (fun () ->
              run_shard ~scheduler ~shard ~make_scheme ~handler))
      |> Array.map Domain.join
  in
  let registry = Metrics.create () in
  Array.iter (fun o -> Metrics.merge ~into:registry o.o_registry) outcomes;
  let stats = Vmm.Stats.snapshot (Vmm.Stats.create ~registry ()) in
  let totals =
    {
      connections = counter_value registry "farm.connections";
      detections = counter_value registry "farm.detections";
      syscalls = Vmm.Stats.total_syscalls stats;
      max_va_bytes =
        int_of_float (Metrics.gauge_value (Metrics.gauge registry "farm.max_va_bytes"));
      stats;
    }
  in
  (* The farm is one simulated parallel machine: its makespan is the
     busiest shard's simulated cycles, so throughput scales with shard
     count deterministically (no wall-clock, no host-core dependence). *)
  let makespan =
    Array.fold_left (fun acc o -> Float.max acc o.o_busy) 0.0 outcomes
  in
  let throughput =
    if makespan > 0.0 then float_of_int totals.connections /. (makespan /. 1e6)
    else 0.0
  in
  let latency =
    Harness.Latency.quantiles_of_histogram
      (Metrics.histogram registry "farm.latency_cycles")
  in
  let per_shard =
    Array.to_list
      (Array.map
         (fun o ->
           {
             shard = o.o_shard;
             served = o.o_served;
             busy_cycles = o.o_busy;
             shard_detections = counter_value o.o_registry "farm.detections";
           })
         outcomes)
  in
  {
    shards;
    policy;
    seed;
    totals;
    makespan_cycles = makespan;
    throughput;
    latency;
    per_shard;
    registry;
  }

let run_server ?policy ?seed ?probe_every ?(config = Harness.Experiment.Ours)
    ?connections ~shards (server : Workload.Spec.server) =
  let connections =
    Option.value connections ~default:server.Workload.Spec.s_default_connections
  in
  run ?policy ?seed ?probe_every
    ~make_scheme:(fun ~shard:_ () -> Harness.Experiment.make_scheme config ())
    ~handler:server.Workload.Spec.handler ~shards ~connections ()
