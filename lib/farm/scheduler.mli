(** Deterministic assignment of connection indices to shards.

    Both policies serve exactly the set [0, connections): a seeded
    Fisher–Yates shuffle fixes the global service order, and the policy
    only decides which shard serves which position.  Because every
    connection's behaviour depends on its index alone (fork-per-
    connection: fresh machine, fresh scheme), the {e merged} totals of a
    farm run are identical for any shard count and either policy — only
    per-shard makespans differ. *)

type policy =
  | Round_robin
      (** Deal the shuffled order round-robin across shards up front.
          Fully deterministic: per-shard assignment, per-shard cycle
          totals and the makespan all depend only on (seed, shards). *)
  | Work_steal
      (** Shards pull the next undealt position from a shared atomic
          cursor.  Per-shard assignment depends on domain timing, but
          the served multiset — hence all merged totals — is still
          exactly [0, connections). *)

val policy_label : policy -> string
val policy_of_string : string -> policy option

type t

val create : policy:policy -> seed:int -> shards:int -> connections:int -> t
(** Raises [Invalid_argument] if [shards <= 0] or [connections < 0]. *)

val next : t -> shard:int -> int option
(** The next connection index for [shard], [None] once its share (or,
    under {!Work_steal}, the whole order) is drained.  Safe to call
    concurrently from distinct shards; a given shard must be driven from
    one domain at a time. *)

val assignment : t -> int array array
(** The round-robin deal: [assignment t].(s) lists the positions shard
    [s] would serve under {!Round_robin}, in order.  Exposed for tests
    (partition properties) and for reporting. *)
