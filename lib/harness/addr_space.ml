type row = {
  name : string;
  connections : int;
  wasted_pages_per_connection : float;
  recycled_pages_per_connection : float;
  va_bytes_per_connection : int;
  note : string;
}

let note_for = function
  | "ghttpd" -> "1 alloc/connection; ~no global-pool wastage"
  | "ftpd" -> "5-6 global allocs/command; realpath pool reused"
  | "telnetd" -> "45 setup allocs, none afterwards"
  | _ -> ""

let measure ?connections (server : Workload.Spec.server) =
  let connections =
    Option.value connections ~default:server.Workload.Spec.s_default_connections
  in
  let wasted = ref 0 in
  let recycled = ref 0 in
  let max_va = ref 0 in
  for i = 0 to connections - 1 do
    let scheme = Experiment.make_scheme Experiment.ours () in
    server.Workload.Spec.handler i scheme;
    (match Runtime.Schemes.introspect scheme with
     | Runtime.Schemes.Shadow_pool { global; recycler }
     | Runtime.Schemes.Shadow_pool_static { global; recycler; _ }
     | Runtime.Schemes.Shadow_pool_epoch { global; recycler; _ } ->
       wasted := !wasted + Shadow.Shadow_pool.shadow_pages_live global;
       recycled := !recycled + Apa.Page_recycler.total_recycled_pages recycler
     | Runtime.Schemes.Shadow_pool_inferred { global; _ } ->
       wasted := !wasted + Shadow.Shadow_pool.shadow_pages_live global
     | Runtime.Schemes.Tagged { recycler; _ } ->
       recycled := !recycled + Apa.Page_recycler.total_recycled_pages recycler
     | Runtime.Schemes.Opaque | Runtime.Schemes.Recoverable _ -> ());
    let va = Vmm.Machine.va_bytes_used scheme.Runtime.Scheme.machine in
    if va > !max_va then max_va := va
  done;
  {
    name = server.Workload.Spec.s_name;
    connections;
    wasted_pages_per_connection =
      float_of_int !wasted /. float_of_int connections;
    recycled_pages_per_connection =
      float_of_int !recycled /. float_of_int connections;
    va_bytes_per_connection = !max_va;
    note = note_for server.Workload.Spec.s_name;
  }

let rows ?connections () =
  List.map (measure ?connections) Workload.Catalog.servers

let render rows =
  let cells r =
    [
      r.name;
      string_of_int r.connections;
      Printf.sprintf "%.1f" r.wasted_pages_per_connection;
      Printf.sprintf "%.1f" r.recycled_pages_per_connection;
      Table.fmt_bytes r.va_bytes_per_connection;
      r.note;
    ]
  in
  Table.render
    ~headers:
      [
        "Server"; "conns"; "wasted pg/conn"; "recycled pg/conn"; "VA/conn";
        "note";
      ]
    ~aligns:[ Table.Left; Right; Right; Right; Right; Table.Left ]
    (List.map cells rows)
