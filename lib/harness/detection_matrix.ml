type cell = {
  config : Experiment.config;
  scenario : string;
  outcome : Workload.Fault_injection.outcome;
}

let configs =
  [
    Experiment.native;
    Experiment.ours;
    Experiment.ours_basic;
    Experiment.efence;
    Experiment.valgrind;
    Experiment.capability;
  ]

let run () =
  List.concat_map
    (fun config ->
      List.map
        (fun (scenario : Workload.Fault_injection.scenario) ->
          let scheme = Experiment.make_scheme config () in
          {
            config;
            scenario = scenario.Workload.Fault_injection.sc_name;
            outcome = scenario.Workload.Fault_injection.inject scheme;
          })
        Workload.Fault_injection.all)
    configs

let spatial_configs =
  [
    Experiment.native; Experiment.ours; Experiment.ours_bounds;
    Experiment.efence; Experiment.valgrind;
  ]

let run_spatial () =
  List.concat_map
    (fun config ->
      List.map
        (fun (scenario : Workload.Fault_injection.scenario) ->
          let scheme = Experiment.make_scheme config () in
          {
            config;
            scenario = scenario.Workload.Fault_injection.sc_name;
            outcome = scenario.Workload.Fault_injection.inject scheme;
          })
        Workload.Fault_injection.spatial)
    spatial_configs

let short_outcome = function
  | Workload.Fault_injection.Detected _ -> "detected"
  | Workload.Fault_injection.Silent _ -> "MISSED"
  | Workload.Fault_injection.Crashed _ -> "crash"
  | Workload.Fault_injection.Crashed_degraded _ -> "crash*"

let render cells =
  let scenarios =
    List.sort_uniq compare (List.map (fun c -> c.scenario) cells)
  in
  (* Row set and order come from the cells (first appearance), so the
     same renderer serves the temporal and the spatial matrices. *)
  let row_configs =
    List.fold_left
      (fun acc c -> if List.mem c.config acc then acc else acc @ [ c.config ])
      [] cells
  in
  let headers = "Scheme" :: scenarios in
  let rows =
    List.map
      (fun config ->
        Experiment.config_label config
        :: List.map
             (fun s ->
               match
                 List.find_opt
                   (fun c -> c.config = config && c.scenario = s)
                   cells
               with
               | Some c -> short_outcome c.outcome
               | None -> "?")
             scenarios)
      row_configs
  in
  Table.render ~headers
    ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) scenarios)
    rows

let guaranteed_configs cells =
  List.filter
    (fun config ->
      List.for_all
        (fun c ->
          c.config <> config
          ||
          match c.outcome with
          | Workload.Fault_injection.Detected _ -> true
          | Workload.Fault_injection.Silent _
          | Workload.Fault_injection.Crashed _
          | Workload.Fault_injection.Crashed_degraded _ ->
            false)
        cells)
    configs
