type config =
  | Native
  | Llvm_base
  | Pa
  | Pa_dummy
  | Ours
  | Ours_basic
  | Ours_spatial
  | Ours_epoch
  | Efence
  | Valgrind
  | Capability

type result = {
  cycles : float;
  stats : Vmm.Stats.snapshot;
  peak_frames : int;
  va_bytes : int;
  extra_memory_bytes : int;
}

let config_label = function
  | Native -> "native"
  | Llvm_base -> "llvm-base"
  | Pa -> "pa"
  | Pa_dummy -> "pa+dummy-syscalls"
  | Ours -> "our-approach"
  | Ours_basic -> "our-approach (no pools)"
  | Ours_spatial -> "ours+bounds"
  | Ours_epoch -> "our-approach+epoch"
  | Efence -> "electric-fence"
  | Valgrind -> "valgrind-sim"
  | Capability -> "capability"

let all_configs =
  [
    Native; Llvm_base; Pa; Pa_dummy; Ours; Ours_basic; Ours_spatial; Efence;
    Valgrind; Capability;
  ]

let cost_profile config ~pa_quality_gain =
  match config with
  | Native -> Vmm.Cost_model.native
  | Llvm_base | Efence | Valgrind | Capability | Ours_basic | Ours_spatial ->
    Vmm.Cost_model.llvm_base
  | Pa | Pa_dummy | Ours | Ours_epoch ->
    (* Pool allocation changes data layout; the per-workload gain factor
       scales the compiled work (paper: gzip speeds up under PA). *)
    let base = Vmm.Cost_model.llvm_base in
    Vmm.Cost_model.with_code_quality base
      (base.Vmm.Cost_model.code_quality *. pa_quality_gain)

let make_scheme config ?(pa_quality_gain = 1.0) ?trace () =
  let machine =
    Vmm.Machine.create ~cost:(cost_profile config ~pa_quality_gain) ?trace ()
  in
  match config with
  | Native | Llvm_base -> Runtime.Schemes.native machine
  | Pa -> Runtime.Schemes.pa machine
  | Pa_dummy -> Runtime.Schemes.pa ~dummy_syscalls:true machine
  | Ours -> Runtime.Schemes.shadow_pool machine
  | Ours_basic -> Runtime.Schemes.shadow_basic machine
  | Ours_spatial -> Runtime.Schemes.shadow_pool_spatial machine
  | Ours_epoch -> Runtime.Schemes.shadow_pool_epoch machine
  | Efence -> Baseline.Efence.scheme machine
  | Valgrind -> Baseline.Valgrind_sim.scheme machine
  | Capability -> Baseline.Capability_check.scheme machine

let harvest (scheme : Runtime.Scheme.t) =
  let machine = scheme.Runtime.Scheme.machine in
  {
    cycles = Vmm.Machine.cycles machine;
    stats = Vmm.Stats.snapshot machine.Vmm.Machine.stats;
    peak_frames = Vmm.Frame_table.peak_frames machine.Vmm.Machine.frames;
    va_bytes = Vmm.Machine.va_bytes_used machine;
    extra_memory_bytes = scheme.Runtime.Scheme.extra_memory_bytes ();
  }

let run_batch ?scale (batch : Workload.Spec.batch) config =
  let scale = Option.value scale ~default:batch.Workload.Spec.default_scale in
  let scheme =
    make_scheme config ~pa_quality_gain:batch.Workload.Spec.pa_quality_gain ()
  in
  batch.Workload.Spec.run scheme ~scale;
  harvest scheme

let run_server ?connections (server : Workload.Spec.server) config =
  let connections =
    Option.value connections ~default:server.Workload.Spec.s_default_connections
  in
  Runtime.Process.serve
    ~make_scheme:(fun () -> make_scheme config ())
    ~handler:server.Workload.Spec.handler ~connections
