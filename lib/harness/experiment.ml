type config = Runtime.Scheme_spec.t

type result = {
  cycles : float;
  stats : Vmm.Stats.snapshot;
  peak_frames : int;
  va_bytes : int;
  extra_memory_bytes : int;
}

let config_label = Runtime.Scheme_spec.label

(* Re-exported shortcuts so harness/bench call sites read
   [Experiment.ours] without reaching into [Runtime.Scheme_spec]. *)
let native = Runtime.Scheme_spec.native
let llvm_base = Runtime.Scheme_spec.llvm_base
let pa = Runtime.Scheme_spec.pa
let pa_dummy = Runtime.Scheme_spec.pa_dummy
let ours = Runtime.Scheme_spec.ours
let ours_basic = Runtime.Scheme_spec.ours_basic
let ours_bounds = Runtime.Scheme_spec.ours_bounds
let ours_epoch = Runtime.Scheme_spec.ours_epoch
let tagged = Runtime.Scheme_spec.tagged
let efence = Runtime.Scheme_spec.efence
let valgrind = Runtime.Scheme_spec.valgrind
let capability = Runtime.Scheme_spec.capability

(* The paper tables' columns, in column order.  The epoch/static/
   inferred/tagged variants are measured by their dedicated bench
   sections, not the original tables. *)
let all_configs =
  Runtime.Scheme_spec.
    [
      native;
      llvm_base;
      pa;
      pa_dummy;
      ours;
      ours_basic;
      ours_bounds;
      efence;
      valgrind;
      capability;
    ]

let make_scheme config ?(pa_quality_gain = 1.0) ?trace () =
  Baseline.Register.install ();
  let machine =
    Vmm.Machine.create
      ~cost:(Runtime.Scheme_spec.cost_profile config ~pa_quality_gain)
      ?trace ()
  in
  Runtime.Scheme_spec.build config machine

let harvest (scheme : Runtime.Scheme.t) =
  let machine = scheme.Runtime.Scheme.machine in
  {
    cycles = Vmm.Machine.cycles machine;
    stats = Vmm.Stats.snapshot machine.Vmm.Machine.stats;
    peak_frames = Vmm.Frame_table.peak_frames machine.Vmm.Machine.frames;
    va_bytes = Vmm.Machine.va_bytes_used machine;
    extra_memory_bytes = scheme.Runtime.Scheme.extra_memory_bytes ();
  }

let run_batch ?scale (batch : Workload.Spec.batch) config =
  let scale = Option.value scale ~default:batch.Workload.Spec.default_scale in
  let scheme =
    make_scheme config ~pa_quality_gain:batch.Workload.Spec.pa_quality_gain ()
  in
  batch.Workload.Spec.run scheme ~scale;
  harvest scheme

let run_server ?connections (server : Workload.Spec.server) config =
  let connections =
    Option.value connections ~default:server.Workload.Spec.s_default_connections
  in
  Runtime.Process.serve
    ~make_scheme:(fun () -> make_scheme config ())
    ~handler:server.Workload.Spec.handler ~connections
