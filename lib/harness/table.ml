type align =
  | Left
  | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~headers ?aligns rows =
  let cols = List.length headers in
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  let widths = Array.make cols 0 in
  let note row =
    List.iteri
      (fun i cell ->
        if i < cols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  note headers;
  List.iter note rows;
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let align = try List.nth aligns i with Failure _ -> Right in
           pad align widths.(i) cell)
         row)
  in
  let rule =
    String.concat "  "
      (List.init cols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" (line headers :: rule :: List.map line rows)

let fmt_cycles c = Printf.sprintf "%.2f" (c /. 1_000_000.)
let fmt_ratio r = Printf.sprintf "%.2f" r

let fmt_bytes b =
  let f = float_of_int b in
  if b >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (f /. 1048576.)
  else if b >= 1024 then Printf.sprintf "%.1f KiB" (f /. 1024.)
  else Printf.sprintf "%d B" b

let json_opt f = function Some v -> f v | None -> Telemetry.Json.Null
