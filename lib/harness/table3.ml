type row = {
  name : string;
  native : float;
  llvm_base : float;
  pa_dummy : float;
  ours : float;
  ratio3 : float;
  paper_ratio3 : float option;
}

let row ?scale (batch : Workload.Spec.batch) =
  let cycles config =
    (Experiment.run_batch ?scale batch config).Experiment.cycles
  in
  let native = cycles Experiment.native in
  let llvm_base = cycles Experiment.llvm_base in
  let pa_dummy = cycles Experiment.pa_dummy in
  let ours = cycles Experiment.ours in
  {
    name = batch.Workload.Spec.name;
    native;
    llvm_base;
    pa_dummy;
    ours;
    ratio3 = ours /. llvm_base;
    paper_ratio3 = batch.Workload.Spec.paper.ratio1;
  }

let rows ?(scale_divisor = 1) () =
  List.map
    (fun (b : Workload.Spec.batch) ->
      row ~scale:(max 1 (b.default_scale / scale_divisor)) b)
    Workload.Catalog.olden

let render rows =
  let cells r =
    [
      r.name;
      Table.fmt_cycles r.native;
      Table.fmt_cycles r.llvm_base;
      Table.fmt_cycles r.pa_dummy;
      Table.fmt_cycles r.ours;
      Table.fmt_ratio r.ratio3;
      (match r.paper_ratio3 with Some x -> Table.fmt_ratio x | None -> "-");
    ]
  in
  Table.render
    ~headers:
      [ "Benchmark"; "native"; "LLVM"; "PA+dummy"; "ours"; "Ratio3"; "paper R3" ]
    (List.map cells rows)

let to_json rows =
  let open Telemetry.Json in
  List
    (List.map
       (fun r ->
         Obj
           [
             ("name", String r.name);
             ("native", Float r.native);
             ("llvm_base", Float r.llvm_base);
             ("pa_dummy", Float r.pa_dummy);
             ("ours", Float r.ours);
             ("ratio3", Float r.ratio3);
             ("paper_ratio3", Table.json_opt (fun x -> Float x) r.paper_ratio3);
           ])
       rows)
