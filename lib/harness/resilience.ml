open Vmm

type plan_spec = {
  p_name : string;
  p_description : string;
  rules : Fault_plan.rule list;
}

let plans =
  [
    {
      p_name = "none";
      p_description = "no faults: the governed scheme must behave like the \
                       plain one";
      rules = [];
    };
    {
      p_name = "transient-5";
      p_description = "5% EAGAIN on mremap+mprotect";
      rules =
        [
          {
            Fault_plan.calls = [ Fault_plan.Mremap; Fault_plan.Mprotect ];
            trigger = Fault_plan.Rate 0.05;
            error = Fault_plan.Transient Fault_plan.Eagain;
          };
        ];
    };
    {
      p_name = "transient-10";
      p_description = "10% transient ENOMEM on mremap+mprotect";
      rules =
        [
          {
            Fault_plan.calls = [ Fault_plan.Mremap; Fault_plan.Mprotect ];
            trigger = Fault_plan.Rate 0.10;
            error = Fault_plan.Transient Fault_plan.Enomem;
          };
        ];
    };
    {
      p_name = "burst";
      p_description = "mprotect calls 40..159 all fail with EAGAIN";
      rules =
        [
          {
            Fault_plan.calls = [ Fault_plan.Mprotect ];
            trigger = Fault_plan.Burst { first = 40; length = 120 };
            error = Fault_plan.Transient Fault_plan.Eagain;
          };
        ];
    };
    {
      p_name = "storm";
      p_description = "80% EAGAIN on mprotect: retries cannot absorb this; \
                       the ladder must step down and the run must still \
                       complete";
      rules =
        [
          {
            Fault_plan.calls = [ Fault_plan.Mprotect ];
            trigger = Fault_plan.Rate 0.8;
            error = Fault_plan.Transient Fault_plan.Eagain;
          };
        ];
    };
    {
      p_name = "nth-fatal";
      p_description = "the 60th mremap fails fatally with ENOMEM";
      rules =
        [
          {
            Fault_plan.calls = [ Fault_plan.Mremap ];
            trigger = Fault_plan.Nth_call 60;
            error = Fault_plan.Fatal Fault_plan.Enomem;
          };
        ];
    };
    {
      p_name = "va-budget";
      p_description = "mmap/mremap fail with ENOSPC once 48 MiB of address \
                       space are mapped";
      rules =
        [
          {
            Fault_plan.calls =
              [ Fault_plan.Mmap; Fault_plan.Mmap_fixed; Fault_plan.Mremap ];
            trigger = Fault_plan.Va_budget (48 * 1024 * 1024);
            error = Fault_plan.Fatal Fault_plan.Enospc;
          };
        ];
    };
  ]

type scheme_kind =
  | Governed_pool
  | Governed_basic

let scheme_kind_label = function
  | Governed_pool -> "governed-shadow-pool"
  | Governed_basic -> "governed-shadow-basic"

type row = {
  plan : string;
  scheme : string;
  workload : string;
  completed : bool;
  crash : string option;
  faults_injected : int;
  retries : int;
  transitions : int;
  final_mode : string;
  unprotected_allocs : int;
  unprotected_frees : int;
  probes_detected : int;
  probes_missed_attributed : int;
  probes_missed_unattributed : int;
  probe_outcomes : (string * string) list;
}

let make_governed kind plan_rules ~seed =
  let fault_plan = Fault_plan.create ~seed plan_rules in
  let machine = Machine.create ~cost:Cost_model.llvm_base ~fault_plan () in
  match kind with
  | Governed_pool -> Runtime.Governed.shadow_pool machine
  | Governed_basic -> Runtime.Governed.shadow_basic machine

(* A probe commits one temporal bug against the governed scheme and
   classifies the result, keeping the victim address so a Silent outcome
   can be checked against the governed scheme's attribution record. *)
let observe governed thunk =
  let degraded () =
    Runtime.Governor.mode (Runtime.Governed.governor governed)
    <> Runtime.Governor.Full
  in
  match thunk () with
  | v -> Workload.Fault_injection.Silent v
  | exception Shadow.Report.Violation r -> Workload.Fault_injection.Detected r
  | exception Fault.Trap f ->
    Workload.Fault_injection.reclassify ~degraded:(degraded ())
      (Workload.Fault_injection.Crashed (Fault.to_string f))
  | exception Heap.Freelist_malloc.Heap_corruption msg ->
    Workload.Fault_injection.reclassify ~degraded:(degraded ())
      (Workload.Fault_injection.Crashed msg)
  | exception Fault_plan.Syscall_failure { name; error } ->
    Workload.Fault_injection.reclassify ~degraded:(degraded ())
      (Workload.Fault_injection.Crashed
         (Printf.sprintf "unhandled syscall failure in %s (%s)" name
            (Fault_plan.error_label error)))

let probes governed =
  let scheme = Runtime.Governed.scheme governed in
  let malloc site size = scheme.Runtime.Scheme.malloc ~site size in
  let free site a = scheme.Runtime.Scheme.free ~site a in
  [
    ( "read-after-free",
      fun () ->
        let p = malloc "probe:raf" 48 in
        scheme.Runtime.Scheme.store p ~width:8 1234;
        free "probe:raf-free" p;
        (p, observe governed (fun () -> scheme.Runtime.Scheme.load p ~width:8))
    );
    ( "write-after-free",
      fun () ->
        let p = malloc "probe:waf" 48 in
        free "probe:waf-free" p;
        ( p,
          observe governed (fun () ->
              scheme.Runtime.Scheme.store p ~width:8 99;
              0) ) );
    ( "double-free",
      fun () ->
        let p = malloc "probe:df" 48 in
        free "probe:df-first" p;
        ( p,
          observe governed (fun () ->
              free "probe:df-second" p;
              0) ) );
  ]

type probe_tally = {
  mutable detected : int;
  mutable missed_attributed : int;
  mutable missed_unattributed : int;
  mutable outcomes : (string * string) list;
  mutable probe_crash : string option;
}

let run_probes governed =
  let tally =
    {
      detected = 0;
      missed_attributed = 0;
      missed_unattributed = 0;
      outcomes = [];
      probe_crash = None;
    }
  in
  List.iter
    (fun (name, probe) ->
      match probe () with
      | addr, outcome ->
        let label = Workload.Fault_injection.outcome_label outcome in
        tally.outcomes <- (name, label) :: tally.outcomes;
        (match outcome with
        | Workload.Fault_injection.Detected _ ->
          tally.detected <- tally.detected + 1
        | Workload.Fault_injection.Silent _ ->
          if Runtime.Governed.was_unprotected governed addr then
            tally.missed_attributed <- tally.missed_attributed + 1
          else tally.missed_unattributed <- tally.missed_unattributed + 1
        | Workload.Fault_injection.Crashed_degraded _ ->
          (* A crash while degraded is attributable but still a miss of
             the diagnosed-violation guarantee. *)
          tally.missed_attributed <- tally.missed_attributed + 1
        | Workload.Fault_injection.Crashed msg ->
          tally.probe_crash <- Some (name ^ ": " ^ msg))
      | exception exn ->
        (* The probe's own setup (malloc/free) must never die: the
           governed scheme degrades instead. *)
        tally.outcomes <- (name, "SETUP-CRASH") :: tally.outcomes;
        tally.probe_crash <- Some (name ^ ": " ^ Printexc.to_string exn))
    (probes governed);
  tally.outcomes <- List.rev tally.outcomes;
  tally

let run_one ?(seed = 0x5eed) (spec : plan_spec) kind
    (batch : Workload.Spec.batch) ~scale =
  let governed = make_governed kind spec.rules ~seed in
  let scheme = Runtime.Governed.scheme governed in
  let machine = scheme.Runtime.Scheme.machine in
  let crash =
    match batch.Workload.Spec.run scheme ~scale with
    | () -> None
    | exception Shadow.Report.Violation r ->
      (* The workloads are correct programs: any violation here is a
         false positive, which the campaign treats as a crash. *)
      Some ("false positive: " ^ Shadow.Report.to_string r)
    | exception Fault.Trap f -> Some ("trap: " ^ Fault.to_string f)
    | exception Heap.Freelist_malloc.Heap_corruption msg ->
      Some ("heap corruption: " ^ msg)
    | exception Fault_plan.Syscall_failure { name; error } ->
      Some
        (Printf.sprintf "unhandled syscall failure in %s (%s)" name
           (Fault_plan.error_label error))
  in
  let tally =
    match crash with
    | None -> Some (run_probes governed)
    | Some _ -> None
  in
  let governor = Runtime.Governed.governor governed in
  let stats = Stats.snapshot machine.Machine.stats in
  {
    plan = spec.p_name;
    scheme = scheme_kind_label kind;
    workload = batch.Workload.Spec.name;
    completed = crash = None;
    crash =
      (match tally with
      | Some { probe_crash = Some _ as c; _ } -> c
      | _ -> crash);
    faults_injected = Fault_plan.injected machine.Machine.fault_plan;
    retries = stats.Stats.syscall_retries;
    transitions = List.length (Runtime.Governor.transitions governor);
    final_mode = Runtime.Governor.mode_label (Runtime.Governor.mode governor);
    unprotected_allocs = Runtime.Governed.unprotected_allocs governed;
    unprotected_frees = Runtime.Governed.unprotected_frees governed;
    probes_detected = (match tally with Some t -> t.detected | None -> 0);
    probes_missed_attributed =
      (match tally with Some t -> t.missed_attributed | None -> 0);
    probes_missed_unattributed =
      (match tally with Some t -> t.missed_unattributed | None -> 0);
    probe_outcomes = (match tally with Some t -> t.outcomes | None -> []);
  }

let campaign ?(scale_divisor = 1) ?seed ?(workloads = Workload.Catalog.olden)
    () =
  List.concat_map
    (fun (spec : plan_spec) ->
      List.concat_map
        (fun (batch : Workload.Spec.batch) ->
          let scale =
            max 1 (batch.Workload.Spec.default_scale / scale_divisor)
          in
          let pool = run_one ?seed spec Governed_pool batch ~scale in
          (* The basic (pool-less) variant is exercised on one plan to
             keep the matrix affordable; its failure modes differ only
             in the backing allocator. *)
          if spec.p_name = "transient-10" then
            [ pool; run_one ?seed spec Governed_basic batch ~scale ]
          else [ pool ])
        workloads)
    plans

let undiagnosed_crashes rows =
  List.filter (fun r -> r.crash <> None) rows

let unattributed_misses rows =
  List.fold_left (fun acc r -> acc + r.probes_missed_unattributed) 0 rows

let ok rows =
  undiagnosed_crashes rows = [] && unattributed_misses rows = 0

let render rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "%-13s %-22s %-10s %-5s %6s %6s %5s %-15s %3s %3s %3s\n"
       "plan" "scheme" "workload" "done" "faults" "retry" "shift" "final-mode"
       "det" "att" "UNA");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "%-13s %-22s %-10s %-5s %6d %6d %5d %-15s %3d %3d %3d%s\n" r.plan
           r.scheme r.workload
           (if r.completed then "yes" else "NO")
           r.faults_injected r.retries r.transitions r.final_mode
           r.probes_detected r.probes_missed_attributed
           r.probes_missed_unattributed
           (match r.crash with None -> "" | Some c -> "  CRASH: " ^ c)))
    rows;
  Buffer.add_string b
    (Printf.sprintf
       "summary: %d rows, %d undiagnosed crashes, %d unattributed misses -> \
        %s\n"
       (List.length rows)
       (List.length (undiagnosed_crashes rows))
       (unattributed_misses rows)
       (if ok rows then "OK" else "FAIL"));
  Buffer.contents b

let to_json rows =
  let module J = Telemetry.Json in
  let row_json r =
    J.Obj
      [
        ("plan", J.String r.plan);
        ("scheme", J.String r.scheme);
        ("workload", J.String r.workload);
        ("completed", J.Bool r.completed);
        ( "crash",
          match r.crash with None -> J.Null | Some c -> J.String c );
        ("faults_injected", J.Int r.faults_injected);
        ("retries", J.Int r.retries);
        ("transitions", J.Int r.transitions);
        ("final_mode", J.String r.final_mode);
        ("unprotected_allocs", J.Int r.unprotected_allocs);
        ("unprotected_frees", J.Int r.unprotected_frees);
        ("probes_detected", J.Int r.probes_detected);
        ("probes_missed_attributed", J.Int r.probes_missed_attributed);
        ("probes_missed_unattributed", J.Int r.probes_missed_unattributed);
        ( "probes",
          J.Obj (List.map (fun (n, l) -> (n, J.String l)) r.probe_outcomes) );
      ]
  in
  J.Obj
    [
      ("rows", J.List (List.map row_json rows));
      ( "summary",
        J.Obj
          [
            ( "undiagnosed_crashes",
              J.Int (List.length (undiagnosed_crashes rows)) );
            ("unattributed_misses", J.Int (unattributed_misses rows));
            ("ok", J.Bool (ok rows));
          ] );
    ]
