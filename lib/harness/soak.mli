(** Multi-day soak: the §3.4 endurance scenario, end to end.

    Simulates days of server uptime — the chosen {!Workload.Servers}
    model handles each connection, while a long-lived pool accumulates
    per-connection session objects with heavy-tailed lifetimes.  Every
    [probe_every] connections a dying session's pointer is planted in a
    simulated root ({!Vmm.Roots} global slot) {e before} its free — the
    stale-global case the GC must witness — and every planted pointer is
    then probed through the scheme's guarded load.

    The differential oracle this produces:

    - [missed_probes]: a probe that did {e not} raise
      {!Shadow.Report.Violation} — the detection guarantee broke.
    - [reclaims_with_witness]: a rooted (witnessed) range that the
      conservative GC nevertheless released — must stay zero; the GC is
      only allowed to reclaim ranges its mark phase proved unreferenced.

    Run with [endurance = false] the harness never reclaims: VA burn is
    linear and the run either exhausts [budget_pages] or projects a
    finite time-to-exhaustion.  With [endurance = true] the reuse policy
    (armed with the real {!Shadow.Gc}) plus the watermark escalation
    keep steady-state VA flat while every probe keeps trapping.  With
    [governor = true] as well, a small budget demonstrates the full
    ladder: gc → tighten → degrade, in that order, in [actions]. *)

type config = {
  days : int;
  connections_per_day : int;
  server : string;  (** a {!Workload.Servers} model name, e.g. ["ghttpd"] *)
  seed : int;
  probe_every : int;  (** connections between probe rounds *)
  probe_slots : int;  (** root global slots holding dangling pointers *)
  session_bytes : int;
  budget_pages : int;
  trigger_pages : int;  (** reuse policy trigger (when endurance is on) *)
  stale_heap_every : int;  (** plant a stale heap word every n frees; 0 = never *)
  endurance : bool;  (** reuse policy + watermark escalation armed? *)
  governor : bool;  (** degrade stage wired to a real ladder? *)
}

val seconds_per_day : float
(** The wall-clock model behind projections: one simulated day of
    connections is one calendar day (86 400 s). *)

val default_config : config
(** 4 days x 150 connections of ghttpd under a 6000-page budget, with
    endurance on and no governor. *)

type day_row = {
  day : int;
  va_pages_used : int;
  delta_pages : int;  (** fresh VA pages consumed during this day *)
  freed_shadow_pages : int;
  pinned_ranges : int;
  gc_runs : int;
  reclaimed_pages : int;
  probes : int;
  probes_detected : int;
  mode : string;  (** governor mode label at end of day *)
}

type result = {
  cfg : config;
  rows : day_row list;
  total_probes : int;
  missed_probes : int;
  reclaims_with_witness : int;
  gc_runs : int;
  reclaimed_pages : int;
  scanned_words : int;
  pinned_final : int;
  exhausted : bool;  (** budget fully consumed by the end of the run *)
  projected_hours : float option;
      (** time-to-exhaustion at the final day's burn rate; [None] = flat *)
  first_day_delta_pages : int;
  tail_delta_pages : int;
  actions : (string * string * int) list;
      (** endurance log: action label, level label, pages used *)
  governor_transitions : (string * string * string) list;
      (** from-mode, to-mode, reason *)
  pressure_levels : string list;
      (** va-pressure level transitions, in order *)
}

val run : ?config:config -> unit -> result
(** Deterministic for a given config (seeded PRNG, no wall clock). *)
