(** Plain-text table rendering for the experiment reports: fixed-width
    columns, right-aligned numbers, a rule under the header. *)

type align =
  | Left
  | Right

val render :
  headers:string list -> ?aligns:align list -> string list list -> string
(** [render ~headers rows] lays the table out with one space of padding;
    [aligns] defaults to [Left] for the first column and [Right] for the
    rest. *)

val fmt_cycles : float -> string
(** Millions of cycles with two decimals, e.g. ["12.34"]. *)

val fmt_ratio : float -> string
(** Two-decimal ratio, e.g. ["1.04"]. *)

val fmt_bytes : int -> string
(** Human-scaled bytes, e.g. ["1.2 MiB"]. *)

val json_opt : ('a -> Telemetry.Json.t) -> 'a option -> Telemetry.Json.t
(** [None] becomes [Null]; shared by the tables' [to_json] exporters. *)
