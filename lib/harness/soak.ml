(* Simulated multi-day uptime over the server models: connection churn,
   heavy-tailed session lifetimes in a long-lived pool, and periodic
   dangling probes whose pointers live in the simulated root set — the
   endurance scenario of §3.4.  Without reclamation the run burns
   shadow VA linearly and exhausts (or projects exhausting) its budget;
   with the conservative GC armed it runs flat, and a differential
   oracle checks that no range a planted root still reached was ever
   reclaimed — every probe must keep trapping. *)

type config = {
  days : int;
  connections_per_day : int;
  server : string;
  seed : int;
  probe_every : int;  (* connections between probe rounds *)
  probe_slots : int;  (* root global slots holding dangling pointers *)
  session_bytes : int;
  budget_pages : int;
  trigger_pages : int;
  stale_heap_every : int;  (* plant a stale heap word every n frees *)
  endurance : bool;  (* reuse policy + watermark escalation armed? *)
  governor : bool;  (* degrade stage wired to a ladder? *)
}

(* Wall-clock model for projections: one simulated day of connections
   is one calendar day, whatever the connection count. *)
let seconds_per_day = 86_400.

let default_config =
  {
    days = 4;
    connections_per_day = 150;
    server = "ghttpd";
    seed = 42;
    probe_every = 10;
    probe_slots = 4;
    session_bytes = 256;
    budget_pages = 6000;
    trigger_pages = 64;
    stale_heap_every = 37;
    endurance = true;
    governor = false;
  }

type day_row = {
  day : int;
  va_pages_used : int;
  delta_pages : int;  (* fresh VA pages consumed during this day *)
  freed_shadow_pages : int;
  pinned_ranges : int;
  gc_runs : int;
  reclaimed_pages : int;
  probes : int;
  probes_detected : int;
  mode : string;
}

type result = {
  cfg : config;
  rows : day_row list;
  total_probes : int;
  missed_probes : int;
  reclaims_with_witness : int;
  gc_runs : int;
  reclaimed_pages : int;
  scanned_words : int;
  pinned_final : int;
  exhausted : bool;
  projected_hours : float option;
  first_day_delta_pages : int;
  tail_delta_pages : int;
  actions : (string * string * int) list;  (* action, level, pages_used *)
  governor_transitions : (string * string * string) list;
  pressure_levels : string list;  (* va-pressure transitions, in order *)
}

(* drand48-style LCG with an xorshift finisher, positive results. *)
let rand state =
  state := ((!state * 0x5DEECE66D) + 0xB) land max_int;
  let z = !state in
  (z lxor (z lsr 17)) land max_int

type session = {
  s_addr : Vmm.Addr.t;
  s_protected : bool;
  s_dies_at : int;  (* connection number *)
}

let find_server name =
  match
    List.find_opt
      (fun s -> s.Workload.Spec.s_name = name)
      Workload.Servers.all
  with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Soak: unknown server %S (know: %s)" name
         (String.concat ", "
            (List.map (fun s -> s.Workload.Spec.s_name) Workload.Servers.all)))

let run ?(config = default_config) () =
  if config.days < 1 then invalid_arg "Soak: days < 1";
  if config.connections_per_day < 1 then invalid_arg "Soak: connections_per_day < 1";
  if config.probe_every < 1 then invalid_arg "Soak: probe_every < 1";
  if config.probe_slots < 1 then invalid_arg "Soak: probe_slots < 1";
  let spec = find_server config.server in
  let machine = Vmm.Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool machine in
  let pool =
    match Runtime.Schemes.introspect scheme with
    | Runtime.Schemes.Shadow_pool { global; _ } -> global
    | _ -> invalid_arg "Soak: shadow_pool introspection missing"
  in
  let roots = Vmm.Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  let policy =
    Shadow.Reuse_policy.create ~gc
      (Shadow.Reuse_policy.Conservative_gc
         { trigger_pages = config.trigger_pages; scan_cost_per_object = 2 })
      pool
  in
  let governor =
    if config.governor then Some (Runtime.Governor.create machine) else None
  in
  let budget =
    Shadow.Va_budget.create ~budget_pages:config.budget_pages machine
  in
  let endurance =
    if config.endurance then begin
      (* The reuse policy is the steady-state reclaimer: it fires from
         the pool's after-free hook on every completed free.  The
         endurance controller layers the watermark escalation on top. *)
      Shadow.Reuse_policy.attach policy;
      Some (Runtime.Endurance.create ~policy ?governor ~budget gc)
    end
    else None
  in
  let rng = ref config.seed in
  let sessions = ref ([] : session list) in
  let planted = Array.make config.probe_slots 0 in
  let next_slot = ref 0 in
  let want_plant = ref false in
  let frees = ref 0 in
  let total_probes = ref 0 in
  let missed_probes = ref 0 in
  let reclaims_with_witness = ref 0 in
  let word = 8 in
  let heavy_tail_lifetime conn =
    let r = rand rng in
    if r mod 8 = 0 then
      (* the tail: up to several simulated days *)
      conn + config.connections_per_day * (1 + (r / 8 mod config.days))
    else conn + 1 + (r / 8 mod 16)
  in
  let alloc_session conn =
    let protect =
      match governor with
      | Some g ->
        Runtime.Governor.on_alloc g;
        Runtime.Governor.should_protect g
      | None -> true
    in
    let addr =
      if protect then scheme.Runtime.Scheme.malloc ~site:"soak:session" config.session_bytes
      else Shadow.Shadow_pool.alloc_raw pool config.session_bytes
    in
    (* Session payload: realistic words, none of which are pointers. *)
    for i = 0 to (config.session_bytes / word) - 1 do
      scheme.Runtime.Scheme.store (addr + (i * word)) ~width:word ((conn * 17) + i + 1)
    done;
    sessions :=
      { s_addr = addr; s_protected = protect; s_dies_at = heavy_tail_lifetime conn }
      :: !sessions
  in
  let free_session s =
    incr frees;
    if s.s_protected then begin
      (* A probe is due: before the object dies, its pointer goes into
         a simulated root — exactly the stale-register/global case the
         GC must witness.  Planting happens strictly before the free so
         the root already exists when the free hook's reclamation can
         first run; any later reclaim of this range is a GC bug, which
         is what the oracle counts. *)
      if !want_plant then begin
        want_plant := false;
        let slot = !next_slot in
        next_slot := (slot + 1) mod config.probe_slots;
        (* Overwriting a slot drops the old root: its range becomes
           provably unreferenced and a later GC may reclaim it. *)
        planted.(slot) <- s.s_addr;
        Vmm.Roots.set_global roots ~slot s.s_addr
      end;
      (* Occasionally leave a stale copy of the dying pointer in a live
         session's heap word: the mark phase must find it and pin the
         range until that session dies too. *)
      (if config.stale_heap_every > 0 && !frees mod config.stale_heap_every = 0
       then
         match
           List.find_opt (fun l -> l.s_protected && l.s_addr <> s.s_addr) !sessions
         with
         | Some l ->
           scheme.Runtime.Scheme.store
             (l.s_addr + ((config.session_bytes / word / 2) * word))
             ~width:word s.s_addr
         | None -> ());
      scheme.Runtime.Scheme.free ~site:"soak:session-done" s.s_addr
    end
    else Shadow.Shadow_pool.dealloc_raw pool s.s_addr
  in
  let probe_round probes detected =
    Array.iter
      (fun addr ->
        if addr <> 0 then begin
          incr total_probes;
          incr probes;
          match scheme.Runtime.Scheme.load addr ~width:word with
          | (_ : int) ->
            (* The dangling read went through: the range was reclaimed
               and recycled while a root still named it. *)
            incr missed_probes;
            incr reclaims_with_witness
          | exception Shadow.Report.Violation _ -> incr detected
          | exception Vmm.Fault.Trap _ ->
            (* Still protected (or unmapped) but the diagnostic record
               is gone: the trap fired, so detection held, but a
               reclaim forgot a rooted range's registry entry. *)
            incr detected;
            if
              not
                (List.exists
                   (fun (base, pages) ->
                     addr >= base && addr < base + Vmm.Addr.of_page pages)
                   (Shadow.Shadow_pool.freed_ranges pool))
            then incr reclaims_with_witness
        end)
      planted
  in
  let rows = ref [] in
  let prev_pages = ref (Shadow.Va_budget.used_pages budget) in
  let first_day_delta = ref 0 in
  let tail_delta = ref 0 in
  let day_probes = ref 0 in
  let day_detected = ref 0 in
  let conn = ref 0 in
  for day = 1 to config.days do
    day_probes := 0;
    day_detected := 0;
    for _ = 1 to config.connections_per_day do
      incr conn;
      let c = !conn in
      (* The server model's own per-connection churn. *)
      spec.Workload.Spec.handler c scheme;
      alloc_session c;
      let dead, live = List.partition (fun s -> s.s_dies_at <= c) !sessions in
      sessions := live;
      List.iter free_session dead;
      (match endurance with
      | Some e -> ignore (Runtime.Endurance.tick e : Shadow.Gc.report option)
      | None -> ignore (Shadow.Va_budget.poll budget : Shadow.Va_budget.level));
      if c mod config.probe_every = 0 then begin
        want_plant := true;
        probe_round day_probes day_detected
      end
    done;
    let pages = Shadow.Va_budget.used_pages budget in
    let delta = pages - !prev_pages in
    prev_pages := pages;
    if day = 1 then first_day_delta := delta;
    if day = config.days then tail_delta := delta;
    rows :=
      {
        day;
        va_pages_used = pages;
        delta_pages = delta;
        freed_shadow_pages = Shadow.Shadow_pool.freed_shadow_pages pool;
        pinned_ranges = List.length (Shadow.Gc.last_pinned gc);
        gc_runs = Shadow.Gc.runs gc;
        reclaimed_pages = Shadow.Gc.total_reclaimed_pages gc;
        probes = !day_probes;
        probes_detected = !day_detected;
        mode =
          (match governor with
          | Some g -> Runtime.Governor.mode_label (Runtime.Governor.mode g)
          | None -> "full");
      }
      :: !rows
  done;
  let used = Shadow.Va_budget.used_pages budget in
  let pages_per_second =
    (* burn rate observed over the final day — the steady state *)
    float_of_int !tail_delta /. seconds_per_day
  in
  let projected_hours =
    if used >= config.budget_pages then Some 0.
    else Shadow.Va_budget.hours_until_exhaustion budget ~pages_per_second
  in
  {
    cfg = config;
    rows = List.rev !rows;
    total_probes = !total_probes;
    missed_probes = !missed_probes;
    reclaims_with_witness = !reclaims_with_witness;
    gc_runs = Shadow.Gc.runs gc;
    reclaimed_pages = Shadow.Gc.total_reclaimed_pages gc;
    scanned_words = Shadow.Gc.total_scanned_words gc;
    pinned_final = List.length (Shadow.Gc.last_pinned gc);
    exhausted = used >= config.budget_pages;
    projected_hours;
    first_day_delta_pages = !first_day_delta;
    tail_delta_pages = !tail_delta;
    actions =
      (match endurance with
      | Some e ->
        List.map
          (fun (a : Runtime.Endurance.entry) ->
            ( Runtime.Endurance.action_label a.Runtime.Endurance.action,
              Shadow.Va_budget.level_label a.Runtime.Endurance.at_level,
              a.Runtime.Endurance.at_pages_used ))
          (Runtime.Endurance.actions e)
      | None -> []);
    governor_transitions =
      (match governor with
      | Some g ->
        List.map
          (fun (tr : Runtime.Governor.transition) ->
            ( Runtime.Governor.mode_label tr.Runtime.Governor.from_mode,
              Runtime.Governor.mode_label tr.Runtime.Governor.to_mode,
              tr.Runtime.Governor.reason ))
          (Runtime.Governor.transitions g)
      | None -> []);
    pressure_levels =
      List.map
        (fun (tr : Shadow.Va_budget.transition) ->
          Shadow.Va_budget.level_label tr.Shadow.Va_budget.to_level)
        (Shadow.Va_budget.transitions budget);
  }
