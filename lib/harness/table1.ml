type row = {
  name : string;
  loc : int option;
  native : float;
  llvm_base : float;
  pa : float;
  pa_dummy : float;
  ours : float;
  ratio1 : float;
  ratio2 : float;
  paper_ratio1 : float option;
}

let make_row ~name ~loc ~paper_ratio1 measure =
  let native = measure Experiment.native in
  let llvm_base = measure Experiment.llvm_base in
  let pa = measure Experiment.pa in
  let pa_dummy = measure Experiment.pa_dummy in
  let ours = measure Experiment.ours in
  {
    name;
    loc;
    native;
    llvm_base;
    pa;
    pa_dummy;
    ours;
    ratio1 = ours /. llvm_base;
    ratio2 = ours /. native;
    paper_ratio1;
  }

let utility_row ?scale (batch : Workload.Spec.batch) =
  make_row ~name:batch.Workload.Spec.name ~loc:batch.Workload.Spec.paper.loc
    ~paper_ratio1:batch.Workload.Spec.paper.ratio1 (fun config ->
      (Experiment.run_batch ?scale batch config).Experiment.cycles)

let server_row ?connections (server : Workload.Spec.server) =
  make_row ~name:server.Workload.Spec.s_name
    ~loc:server.Workload.Spec.s_paper.loc
    ~paper_ratio1:server.Workload.Spec.s_paper.ratio1 (fun config ->
      (Experiment.run_server ?connections server config)
        .Runtime.Process.mean_cycles_per_connection)

let rows ?(scale_divisor = 1) () =
  List.map
    (fun (b : Workload.Spec.batch) ->
      utility_row ~scale:(max 1 (b.default_scale / scale_divisor)) b)
    Workload.Catalog.utilities
  @ List.map
      (fun (s : Workload.Spec.server) ->
        server_row
          ~connections:(max 2 (s.s_default_connections / scale_divisor))
          s)
      Workload.Catalog.servers

let render rows =
  let cells r =
    [
      r.name;
      (match r.loc with Some l -> string_of_int l | None -> "-");
      Table.fmt_cycles r.native;
      Table.fmt_cycles r.llvm_base;
      Table.fmt_cycles r.pa;
      Table.fmt_cycles r.pa_dummy;
      Table.fmt_cycles r.ours;
      Table.fmt_ratio r.ratio1;
      Table.fmt_ratio r.ratio2;
      (match r.paper_ratio1 with Some x -> Table.fmt_ratio x | None -> "-");
    ]
  in
  Table.render
    ~headers:
      [
        "Benchmark"; "LOC"; "native"; "LLVM"; "PA"; "PA+dummy"; "ours";
        "Ratio1"; "Ratio2"; "paper R1";
      ]
    (List.map cells rows)

let to_json rows =
  let open Telemetry.Json in
  List
    (List.map
       (fun r ->
         Obj
           [
             ("name", String r.name);
             ("loc", Table.json_opt (fun l -> Int l) r.loc);
             ("native", Float r.native);
             ("llvm_base", Float r.llvm_base);
             ("pa", Float r.pa);
             ("pa_dummy", Float r.pa_dummy);
             ("ours", Float r.ours);
             ("ratio1", Float r.ratio1);
             ("ratio2", Float r.ratio2);
             ("paper_ratio1", Table.json_opt (fun x -> Float x) r.paper_ratio1);
           ])
       rows)
