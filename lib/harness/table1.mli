(** Table 1 of the paper: run-time overheads of the full approach on
    Unix utilities and servers — columns native, LLVM (base), PA,
    PA + dummy syscalls, our approach, Ratio 1 (ours / LLVM base) and
    Ratio 2 (ours / native).  Utilities report whole-run cycles;
    servers report mean response cycles per forked connection. *)

type row = {
  name : string;
  loc : int option;
  native : float;
  llvm_base : float;
  pa : float;
  pa_dummy : float;
  ours : float;
  ratio1 : float;
  ratio2 : float;
  paper_ratio1 : float option;
}

val utility_row : ?scale:int -> Workload.Spec.batch -> row
val server_row : ?connections:int -> Workload.Spec.server -> row

val rows : ?scale_divisor:int -> unit -> row list
(** All Table 1 rows (4 utilities then 5 servers).  [scale_divisor]
    shrinks workload sizes for quick runs (tests). *)

val render : row list -> string

val to_json : row list -> Telemetry.Json.t
(** Rows as a JSON array (the [--json] CLI flag and BENCH_results.json). *)
