(** Server response-time distributions.

    Table 1 reports mean response time; for a production-server argument
    the tail matters too.  This study serves a synthetic web workload
    with heavy-tailed response sizes (file sizes spanning two orders of
    magnitude) and reports percentiles per configuration.  The scheme's
    cost is a near-constant few syscalls per connection, so its relative
    overhead {e shrinks} toward the tail — large requests amortize it —
    which is exactly why the paper targets servers. *)

type distribution = {
  config : Experiment.config;
  p50 : float;   (** median cycles per connection *)
  p95 : float;
  p99 : float;
  mean : float;
}

val buckets_per_octave : int
(** Bucket resolution this study uses (256/octave, 0.27% per bucket):
    fine enough that percentile {e ratios} between configs carry the
    few-percent effects being measured.  Shared with the farm's
    per-shard latency histograms so they merge against each other. *)

type quantiles = { q50 : float; q95 : float; q99 : float; q_mean : float }

val quantiles_of_histogram : Telemetry.Histogram.t -> quantiles
(** Percentile summary of any cycles histogram (e.g. a farm's merged
    per-shard latency histogram). *)

val measure :
  ?connections:int -> Experiment.config -> distribution
(** Serve [connections] (default 120) heavy-tailed requests. *)

val study : ?connections:int -> unit -> distribution list
(** Native, LLVM-base and Ours, same request sequence. *)

val render : distribution list -> string
