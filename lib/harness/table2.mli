(** Table 2 of the paper: our approach vs. a Valgrind-style checker on
    the four Unix utilities (the servers cannot be run under Valgrind,
    as the paper notes).  Slowdowns are relative to the LLVM baseline,
    like Ratio 1. *)

type row = {
  name : string;
  ours_cycles : float;
  valgrind_cycles : float;
  ours_slowdown : float;
  valgrind_slowdown : float;
  paper_valgrind_slowdown : float option;
}

val rows : ?scale_divisor:int -> unit -> row list
val render : row list -> string

val to_json : row list -> Telemetry.Json.t
(** Rows as a JSON array (the [--json] CLI flag and BENCH_results.json). *)
