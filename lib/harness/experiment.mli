(** Running a workload under a scheme spec and harvesting the numbers
    the paper's tables report.

    A configuration is a {!Runtime.Scheme_spec.t}: it picks both the
    cost-model profile (native GCC vs LLVM-base code quality, via
    {!Runtime.Scheme_spec.cost_profile}) and the protection scheme (via
    {!Runtime.Scheme_spec.build}), mirroring the columns of Tables 1
    and 3.  {!make_scheme} installs the baseline builders
    ([Baseline.Register.install]) so [efence]/[valgrind]/[capability]
    specs build without further setup. *)

type config = Runtime.Scheme_spec.t

type result = {
  cycles : float;
  stats : Vmm.Stats.snapshot;
  peak_frames : int;
  va_bytes : int;
  extra_memory_bytes : int;
}

val config_label : config -> string
(** {!Runtime.Scheme_spec.label}: the paper-table column label. *)

(** Re-exported {!Runtime.Scheme_spec} shortcuts (default configs). *)

val native : config
val llvm_base : config
val pa : config
val pa_dummy : config
val ours : config
val ours_basic : config
val ours_bounds : config
val ours_epoch : config
val tagged : config
val efence : config
val valgrind : config
val capability : config

val all_configs : config list
(** The original tables' columns in column order: native, llvm-base,
    pa, pa+dummy, ours, ours (no pools), ours+bounds, and the three
    baselines.  The epoch/static/inferred/tagged variants are measured
    by their dedicated bench sections, not the paper tables. *)

val make_scheme :
  config ->
  ?pa_quality_gain:float ->
  ?trace:Telemetry.Sink.t ->
  unit ->
  Runtime.Scheme.t
(** Fresh machine (with the config's cost profile) plus scheme.
    [pa_quality_gain] adjusts code quality under the pool-based configs
    only, modeling APA's locality effect on that workload.  [trace]
    attaches an event sink to the machine ({!Vmm.Machine.create}). *)

val run_batch : ?scale:int -> Workload.Spec.batch -> config -> result
(** Run a utility/Olden workload to completion under a fresh machine. *)

val run_server :
  ?connections:int -> Workload.Spec.server -> config -> Runtime.Process.server_run
(** Serve N forked connections; the per-connection response time is the
    server metric (paper §4.1 measures client response time). *)
