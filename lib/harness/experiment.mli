(** Running a workload under a named configuration and harvesting the
    numbers the paper's tables report.

    A configuration picks both the cost-model profile (native GCC vs
    LLVM-base code quality) and the protection scheme, mirroring the
    columns of Tables 1 and 3:

    - [Native]: GCC -O3, plain allocator.
    - [Llvm_base]: LLVM C back-end baseline — the denominator of Ratio 1.
    - [Pa]: pool allocation alone (applies the workload's locality gain).
    - [Pa_dummy]: pools + one no-op syscall per alloc and free.
    - [Ours]: the full shadow-page + pool scheme.
    - [Ours_basic]: shadow pages without pools (binary-only mode).
    - [Ours_spatial]: the future-work combination — shadow pages plus
      software bounds checks (spatial + temporal).
    - [Ours_epoch]: the full approach with epoch-batched deferred
      protection and slab pre-aliasing (quarantined frees, coalesced
      mprotect) — same detection guarantee, an order of magnitude fewer
      protection syscalls on churn.  Not part of {!all_configs}: the
      paper's tables compare the original columns; the epoch variant is
      measured by the dedicated [epoch_batching] bench section and the
      farm.
    - [Efence], [Valgrind], [Capability]: the related-work baselines. *)

type config =
  | Native
  | Llvm_base
  | Pa
  | Pa_dummy
  | Ours
  | Ours_basic
  | Ours_spatial
  | Ours_epoch
  | Efence
  | Valgrind
  | Capability

type result = {
  cycles : float;
  stats : Vmm.Stats.snapshot;
  peak_frames : int;
  va_bytes : int;
  extra_memory_bytes : int;
}

val config_label : config -> string
val all_configs : config list

val make_scheme :
  config ->
  ?pa_quality_gain:float ->
  ?trace:Telemetry.Sink.t ->
  unit ->
  Runtime.Scheme.t
(** Fresh machine (with the config's cost profile) plus scheme.
    [pa_quality_gain] adjusts code quality under the pool-based configs
    only, modeling APA's locality effect on that workload.  [trace]
    attaches an event sink to the machine ({!Vmm.Machine.create}). *)

val run_batch : ?scale:int -> Workload.Spec.batch -> config -> result
(** Run a utility/Olden workload to completion under a fresh machine. *)

val run_server :
  ?connections:int -> Workload.Spec.server -> config -> Runtime.Process.server_run
(** Serve N forked connections; the per-connection response time is the
    server metric (paper §4.1 measures client response time). *)
