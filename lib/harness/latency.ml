type distribution = {
  config : Experiment.config;
  p50 : float;
  p95 : float;
  p99 : float;
  mean : float;
}

(* Heavy-tailed request sizes: mostly small pages, occasional large
   downloads (the classic web-server distribution). *)
let request_blocks rng =
  match Workload.Prng.below rng 100 with
  | n when n < 70 -> 1 + Workload.Prng.below rng 4 (* small page *)
  | n when n < 95 -> 8 + Workload.Prng.below rng 24 (* asset *)
  | _ -> 64 + Workload.Prng.below rng 192 (* large download *)

let handler blocks _conn (scheme : Runtime.Scheme.t) =
  let req = scheme.Runtime.Scheme.malloc ~site:"latency:request" 512 in
  Runtime.Workload_api.fill_words scheme req ~words:16 ~value:blocks;
  let buf = scheme.Runtime.Scheme.malloc ~site:"latency:sendbuf" 4096 in
  for block = 1 to blocks do
    Runtime.Workload_api.fill_words scheme buf ~words:64 ~value:block;
    scheme.Runtime.Scheme.compute 40_000
  done;
  scheme.Runtime.Scheme.free buf;
  scheme.Runtime.Scheme.free req

(* Fine buckets (256/octave = 0.27% ratio per bucket): the study compares
   percentile *ratios* across configs, so quantization error must stay
   well under the few-percent effects being measured. *)
let latency_buckets_per_octave = 256
let buckets_per_octave = latency_buckets_per_octave

type quantiles = { q50 : float; q95 : float; q99 : float; q_mean : float }

let quantiles_of_histogram hist =
  {
    q50 = Telemetry.Histogram.percentile hist 0.50;
    q95 = Telemetry.Histogram.percentile hist 0.95;
    q99 = Telemetry.Histogram.percentile hist 0.99;
    q_mean = Telemetry.Histogram.mean hist;
  }

let measure ?(connections = 120) config =
  let rng = Workload.Prng.create ~seed:271828 in
  let hist =
    Telemetry.Histogram.create ~buckets_per_octave:latency_buckets_per_octave ()
  in
  for conn = 0 to connections - 1 do
    let blocks = request_blocks rng in
    let result =
      Runtime.Process.run_connection
        ~make_scheme:(fun () -> Experiment.make_scheme config ())
        ~handler:(handler blocks conn)
    in
    Telemetry.Histogram.observe hist result.Runtime.Process.cycles
  done;
  let q = quantiles_of_histogram hist in
  { config; p50 = q.q50; p95 = q.q95; p99 = q.q99; mean = q.q_mean }

let study ?connections () =
  List.map
    (fun config -> measure ?connections config)
    [ Experiment.native; Experiment.llvm_base; Experiment.ours ]

let render dists =
  let base =
    match
      List.find_opt (fun d -> d.config = Experiment.llvm_base) dists
    with
    | Some d -> d
    | None -> List.hd dists
  in
  let cells d =
    [
      Experiment.config_label d.config;
      Table.fmt_cycles d.p50;
      Table.fmt_cycles d.p95;
      Table.fmt_cycles d.p99;
      Table.fmt_cycles d.mean;
      Table.fmt_ratio (d.p50 /. base.p50);
      Table.fmt_ratio (d.p99 /. base.p99);
    ]
  in
  Table.render
    ~headers:[ "Scheme"; "p50"; "p95"; "p99"; "mean"; "p50 ratio"; "p99 ratio" ]
    (List.map cells dists)
