type row = {
  name : string;
  ours_cycles : float;
  valgrind_cycles : float;
  ours_slowdown : float;
  valgrind_slowdown : float;
  paper_valgrind_slowdown : float option;
}

let row ?scale (batch : Workload.Spec.batch) =
  let cycles config =
    (Experiment.run_batch ?scale batch config).Experiment.cycles
  in
  let base = cycles Experiment.llvm_base in
  let ours = cycles Experiment.ours in
  let valgrind = cycles Experiment.valgrind in
  {
    name = batch.Workload.Spec.name;
    ours_cycles = ours;
    valgrind_cycles = valgrind;
    ours_slowdown = ours /. base;
    valgrind_slowdown = valgrind /. base;
    paper_valgrind_slowdown = batch.Workload.Spec.paper.valgrind_ratio;
  }

let rows ?(scale_divisor = 1) () =
  List.map
    (fun (b : Workload.Spec.batch) ->
      row ~scale:(max 1 (b.default_scale / scale_divisor)) b)
    Workload.Catalog.utilities

let render rows =
  let cells r =
    [
      r.name;
      Table.fmt_cycles r.ours_cycles;
      Table.fmt_cycles r.valgrind_cycles;
      Table.fmt_ratio r.ours_slowdown;
      Table.fmt_ratio r.valgrind_slowdown;
      (match r.paper_valgrind_slowdown with
       | Some x -> Table.fmt_ratio x
       | None -> "-");
    ]
  in
  Table.render
    ~headers:
      [
        "Benchmark"; "ours (Mcy)"; "valgrind (Mcy)"; "our slowdown";
        "valgrind slowdown"; "paper valgrind";
      ]
    (List.map cells rows)

let to_json rows =
  let open Telemetry.Json in
  List
    (List.map
       (fun r ->
         Obj
           [
             ("name", String r.name);
             ("ours_cycles", Float r.ours_cycles);
             ("valgrind_cycles", Float r.valgrind_cycles);
             ("ours_slowdown", Float r.ours_slowdown);
             ("valgrind_slowdown", Float r.valgrind_slowdown);
             ( "paper_valgrind_slowdown",
               Table.json_opt (fun x -> Float x) r.paper_valgrind_slowdown );
           ])
       rows)
