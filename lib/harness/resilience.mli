(** Fault-injection campaign for the governed shadow-page runtime.

    Sweeps {!plans} (deterministic {!Vmm.Fault_plan}s: none, transient
    rates on the two guarantee-critical syscalls, a failure burst, a
    one-shot fatal, and modeled address-space exhaustion) against the
    Olden workloads under {!Runtime.Governed} schemes, then asserts the
    robustness invariants of the degradation design:

    - {b no undiagnosed crash}: every workload completes; a syscall
      failure may degrade detection but never kills the program;
    - {b full detection in full mode}: with no faults injected, the
      post-run probes (read-/write-after-free, double-free) are all
      caught;
    - {b attributable misses only}: a probe that slips through is
      explained by the governed scheme's own records (the victim lived
      unprotected, or the ladder was below [Full]) — never a surprise.

    The campaign's rows land in BENCH_results.json under ["resilience"]
    and are checked by [bench/validate_results]. *)

type plan_spec = {
  p_name : string;
  p_description : string;
  rules : Vmm.Fault_plan.rule list;
}

val plans : plan_spec list

type scheme_kind =
  | Governed_pool
  | Governed_basic

val scheme_kind_label : scheme_kind -> string

type row = {
  plan : string;
  scheme : string;
  workload : string;
  completed : bool;
  crash : string option;  (** an {e undiagnosed} failure — must be [None] *)
  faults_injected : int;
  retries : int;
  transitions : int;
  final_mode : string;
  unprotected_allocs : int;
  unprotected_frees : int;
  probes_detected : int;
  probes_missed_attributed : int;
  probes_missed_unattributed : int;
  probe_outcomes : (string * string) list;
}

val run_one :
  ?seed:int ->
  plan_spec ->
  scheme_kind ->
  Workload.Spec.batch ->
  scale:int ->
  row

val campaign :
  ?scale_divisor:int ->
  ?seed:int ->
  ?workloads:Workload.Spec.batch list ->
  unit ->
  row list
(** The full sweep; [workloads] defaults to the Olden set. *)

val undiagnosed_crashes : row list -> row list
val unattributed_misses : row list -> int

val ok : row list -> bool
(** No undiagnosed crashes and no unattributed misses. *)

val render : row list -> string
val to_json : row list -> Telemetry.Json.t
