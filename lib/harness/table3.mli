(** Table 3 of the paper: overheads on the allocation-intensive Olden
    benchmarks — the worst case for a per-allocation-syscall scheme.
    Columns native, LLVM (base), PA + dummy syscalls, our approach, and
    Ratio 3 (ours / LLVM base). *)

type row = {
  name : string;
  native : float;
  llvm_base : float;
  pa_dummy : float;
  ours : float;
  ratio3 : float;
  paper_ratio3 : float option;
}

val rows : ?scale_divisor:int -> unit -> row list
val render : row list -> string

val to_json : row list -> Telemetry.Json.t
(** Rows as a JSON array (the [--json] CLI flag and BENCH_results.json). *)
