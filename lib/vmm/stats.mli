(** Event counters for a simulated machine.

    Every MMU access, TLB lookup, syscall and fault is counted here; the
    {!Cost_model} turns a snapshot of these counters into simulated
    cycles.  Counters are monotonically increasing; use {!snapshot} and
    {!diff} to measure a region of execution.

    The counters live directly in a {!Telemetry.Metrics} registry (names
    ["vmm.loads"], ["vmm.faults"], ...): the count sites in
    {!Kernel}/{!Mmu} write through handles cached at creation time, so
    there is no separate sync step and the registry exporters always see
    the live values.  [t] itself is just that bundle of cached handles;
    {!snapshot} is the read-only view the rest of the system consumes. *)

type t

type syscall_kind =
  | Sys_mmap
  | Sys_mremap   (** shadow-page aliasing, the paper's per-allocation call *)
  | Sys_mprotect (** page protection flip, the paper's per-free call *)
  | Sys_munmap
  | Sys_dummy    (** no-op syscall used by the "PA + dummy syscalls" column *)

type snapshot = {
  instructions : int;  (** non-memory work accounted by workloads *)
  loads : int;
  stores : int;
  tlb_hits : int;
  tlb_misses : int;
  tlb_flushes : int;
  tlb_shootdowns : int;
      (** ranged TLB shootdown operations (one per [mprotect]/[munmap]
          call, however many pages it covers) *)
  tlb_shootdown_pages : int;
      (** total pages invalidated by those shootdowns *)
  cache_hits : int;
  cache_misses : int;
  syscalls_mmap : int;
  syscalls_mremap : int;
  syscalls_mprotect : int;
  syscalls_munmap : int;
  syscalls_dummy : int;
  faults : int;
  syscalls_failed : int;
      (** syscall attempts that returned an error through the
          {!Syscalls} boundary (injected faults and kernel rejections) *)
  syscall_retries : int;
      (** transient-failure retries performed by [Runtime.Retry] *)
  pages_mapped : int;      (** page-table entries created, cumulative *)
  frames_allocated : int;  (** physical frames ever allocated, cumulative *)
  alloc_ops : int;  (** heap allocations completed (malloc-level ops) *)
  free_ops : int;   (** heap frees completed (free-level ops) *)
}

val create : ?registry:Telemetry.Metrics.t -> unit -> t
(** Fresh counters (all zero) in a fresh registry by default.  Passing
    [registry] attaches to (get-or-creates the ["vmm.*"] counters of) an
    existing registry; if those counters already hold counts, the new
    handle keeps accumulating on top — which is how several machines can
    share one registry deliberately.  Note that {!Machine.cycles} prices
    the whole snapshot, so a shared registry makes per-machine cycle
    readings cumulative. *)

val registry : t -> Telemetry.Metrics.t
(** The live registry behind the counters. *)

val count_instructions : t -> int -> unit
val count_load : t -> unit
val count_store : t -> unit
val count_tlb_hit : t -> unit
val count_tlb_miss : t -> unit
val count_tlb_flush : t -> unit

val count_tlb_shootdown : t -> pages:int -> unit
(** One ranged shootdown covering [pages] pages: increments the
    operation count by one and the page count by [pages]. *)

val count_cache_hit : t -> unit
val count_cache_miss : t -> unit
val count_syscall : t -> syscall_kind -> unit
val count_fault : t -> unit
val count_syscall_failed : t -> unit
val count_syscall_retry : t -> unit
val count_page_mapped : t -> unit
val count_frame_allocated : t -> unit

val count_alloc_op : t -> unit
(** One completed heap allocation, whatever its protection path (full
    shadow aliasing, slab hit, or elided). *)

val count_free_op : t -> unit
(** One completed heap free, including frees merely enqueued into an
    epoch quarantine. *)

val snapshot : t -> snapshot
val zero : snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference. *)

val sum : snapshot -> snapshot -> snapshot
(** Per-field addition, for aggregating across machines (e.g. one per
    forked connection). *)

val total_syscalls : snapshot -> int

val protection_syscalls : snapshot -> int
(** Syscalls attributable to dangling-pointer protection: mremap
    (shadow aliasing) + mprotect (protection flips) + munmap. *)

val heap_ops : snapshot -> int
(** [alloc_ops + free_ops]. *)

val syscalls_per_op : snapshot -> float option
(** [protection_syscalls / heap_ops], or [None] when the snapshot saw
    no allocator traffic — the derived metric `danguard report` and the
    bench sections surface. *)

val pp : Format.formatter -> snapshot -> unit

val field_values : snapshot -> (string * int) list
(** Counter name/value pairs under the ["vmm."] namespace (the same
    names the live registry carries), in declaration order. *)

val accumulate : Telemetry.Metrics.t -> snapshot -> unit
(** Add every field of the snapshot onto the registry's ["vmm.*"]
    counters (get-or-create).  Used by aggregators that sum many
    short-lived machines — e.g. one forked connection each — into one
    mergeable registry. *)

val snapshot_to_json : snapshot -> Telemetry.Json.t
(** [{"vmm.instructions": n, ...}] — a flat counter object. *)
