(** Event counters for a simulated machine.

    Every MMU access, TLB lookup, syscall and fault is counted here; the
    {!Cost_model} turns a snapshot of these counters into simulated
    cycles.  Counters are monotonically increasing; use {!snapshot} and
    {!diff} to measure a region of execution. *)

type t

type syscall_kind =
  | Sys_mmap
  | Sys_mremap   (** shadow-page aliasing, the paper's per-allocation call *)
  | Sys_mprotect (** page protection flip, the paper's per-free call *)
  | Sys_munmap
  | Sys_dummy    (** no-op syscall used by the "PA + dummy syscalls" column *)

type snapshot = {
  instructions : int;  (** non-memory work accounted by workloads *)
  loads : int;
  stores : int;
  tlb_hits : int;
  tlb_misses : int;
  tlb_flushes : int;
  tlb_shootdowns : int;
      (** ranged TLB shootdown operations (one per [mprotect]/[munmap]
          call, however many pages it covers) *)
  tlb_shootdown_pages : int;
      (** total pages invalidated by those shootdowns *)
  cache_hits : int;
  cache_misses : int;
  syscalls_mmap : int;
  syscalls_mremap : int;
  syscalls_mprotect : int;
  syscalls_munmap : int;
  syscalls_dummy : int;
  faults : int;
  syscalls_failed : int;
      (** syscall attempts that returned an error through the
          {!Syscalls} boundary (injected faults and kernel rejections) *)
  syscall_retries : int;
      (** transient-failure retries performed by [Runtime.Retry] *)
  pages_mapped : int;      (** page-table entries created, cumulative *)
  frames_allocated : int;  (** physical frames ever allocated, cumulative *)
}

val create : unit -> t

val count_instructions : t -> int -> unit
val count_load : t -> unit
val count_store : t -> unit
val count_tlb_hit : t -> unit
val count_tlb_miss : t -> unit
val count_tlb_flush : t -> unit

val count_tlb_shootdown : t -> pages:int -> unit
(** One ranged shootdown covering [pages] pages: increments the
    operation count by one and the page count by [pages]. *)

val count_cache_hit : t -> unit
val count_cache_miss : t -> unit
val count_syscall : t -> syscall_kind -> unit
val count_fault : t -> unit
val count_syscall_failed : t -> unit
val count_syscall_retry : t -> unit
val count_page_mapped : t -> unit
val count_frame_allocated : t -> unit

val snapshot : t -> snapshot
val zero : snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference. *)

val sum : snapshot -> snapshot -> snapshot
(** Per-field addition, for aggregating across machines (e.g. one per
    forked connection). *)

val total_syscalls : snapshot -> int
val pp : Format.formatter -> snapshot -> unit

(** {2 Telemetry-registry shim}

    A snapshot is equivalently a set of counters in a
    {!Telemetry.Metrics} registry (names ["vmm.loads"],
    ["vmm.faults"], ...).  [of_metrics (to_metrics s) = s], so
    {!diff}/{!pp} compose with the registry exporters. *)

val field_values : snapshot -> (string * int) list
(** Counter name/value pairs, in declaration order. *)

val to_metrics : ?registry:Telemetry.Metrics.t -> snapshot -> Telemetry.Metrics.t
(** Write every field into [registry] (fresh one by default). *)

val of_metrics : Telemetry.Metrics.t -> snapshot
(** Read the fields back; unregistered counters read as 0. *)
