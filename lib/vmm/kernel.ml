let trace_syscall (m : Machine.t) name pages =
  if Telemetry.Sink.enabled m.trace then
  Telemetry.Sink.emit m.trace (fun () ->
      Telemetry.Event.Syscall { name; pages })

(* One ranged TLB shootdown: a single sweep of the TLB, one stats count
   and one trace event for the whole range — never one per page.  This
   is the batching the paper's pooldestroy-time bulk mprotect relies on. *)
let shootdown_range (m : Machine.t) ~page ~pages =
  Tlb.invalidate_range m.tlb ~page ~pages;
  Stats.count_tlb_shootdown m.stats ~pages;
  if Telemetry.Sink.enabled m.trace then
    Telemetry.Sink.emit m.trace (fun () -> Telemetry.Event.Tlb_flush { pages })

let check_aligned name addr =
  if not (Addr.is_page_aligned addr) then
    invalid_arg (Printf.sprintf "Kernel.%s: unaligned address 0x%x" name addr)

let check_pages name pages =
  if pages <= 0 then invalid_arg (Printf.sprintf "Kernel.%s: pages <= 0" name)

(* Install a mapping for one page, releasing any previous mapping of that
   virtual page first (MAP_FIXED semantics).  The TLB is shot down on
   every remap, so a cached translation can never outlive its page-table
   entry — the fast path's coherence invariant. *)
let map_page (m : Machine.t) page frame perm =
  (match Page_table.lookup m.page_table ~page with
   | Some old ->
     ignore (Page_table.unmap m.page_table ~page);
     Tlb.invalidate_page m.tlb ~page;
     Frame_table.decr_ref m.frames old.frame
   | None -> ());
  Page_table.map m.page_table m.stats ~page ~frame ~perm;
  Frame_table.incr_ref m.frames frame

let map_fresh_range (m : Machine.t) base pages =
  for i = 0 to pages - 1 do
    let frame = Frame_table.allocate m.frames m.stats in
    map_page m (Addr.page_index base + i) frame Perm.Read_write
  done

let mmap (m : Machine.t) ~pages =
  check_pages "mmap" pages;
  Stats.count_syscall m.stats Stats.Sys_mmap;
  trace_syscall m "mmap" pages;
  let base = Machine.fresh_pages m pages in
  map_fresh_range m base pages;
  base

let mmap_fixed (m : Machine.t) ~addr ~pages =
  check_aligned "mmap_fixed" addr;
  check_pages "mmap_fixed" pages;
  Stats.count_syscall m.stats Stats.Sys_mmap;
  trace_syscall m "mmap" pages;
  map_fresh_range m addr pages

let frame_of_mapped (m : Machine.t) page =
  match Page_table.lookup m.page_table ~page with
  | Some { frame; _ } -> frame
  | None ->
    invalid_arg
      (Printf.sprintf "Kernel.mremap: source page %d not mapped" page)

let alias_range (m : Machine.t) ~src ~dst ~pages =
  (* Collect source frames first: if the ranges overlap, remapping the
     destination must not disturb a source page read later. *)
  let src_page = Addr.page_index src in
  let frames = Array.init pages (fun i -> frame_of_mapped m (src_page + i)) in
  Array.iteri
    (fun i frame -> map_page m (Addr.page_index dst + i) frame Perm.Read_write)
    frames

let mremap_alias (m : Machine.t) ~src ~pages =
  check_aligned "mremap_alias" src;
  check_pages "mremap_alias" pages;
  Stats.count_syscall m.stats Stats.Sys_mremap;
  trace_syscall m "mremap" pages;
  let dst = Machine.fresh_pages m pages in
  alias_range m ~src ~dst ~pages;
  dst

(* Vectored aliasing: one kernel crossing creates [copies] back-to-back
   aliases of the same canonical run, each a full alias of
   [src .. src+pages).  The copies are contiguous in fresh VA, so a
   later coalesced mprotect over consecutively-freed slab objects
   merges into a single range.  This is the "alias a slab at a time"
   OS enhancement the paper sketches as future work; validation happens
   before any mapping is touched so a rejected call leaves the machine
   unchanged. *)
let mremap_alias_slab (m : Machine.t) ~src ~pages ~copies =
  check_aligned "mremap_alias_slab" src;
  check_pages "mremap_alias_slab" pages;
  if copies <= 0 then invalid_arg "Kernel.mremap_alias_slab: copies <= 0";
  let src_page = Addr.page_index src in
  for i = 0 to pages - 1 do
    ignore (frame_of_mapped m (src_page + i))
  done;
  Stats.count_syscall m.stats Stats.Sys_mremap;
  trace_syscall m "mremap_slab" (pages * copies);
  let base = Machine.fresh_pages m (pages * copies) in
  for c = 0 to copies - 1 do
    alias_range m ~src ~dst:(base + (c * pages * Addr.page_size)) ~pages
  done;
  base

let mremap_alias_at (m : Machine.t) ~src ~dst ~pages =
  check_aligned "mremap_alias_at" src;
  check_aligned "mremap_alias_at" dst;
  check_pages "mremap_alias_at" pages;
  Stats.count_syscall m.stats Stats.Sys_mremap;
  trace_syscall m "mremap" pages;
  alias_range m ~src ~dst ~pages

let mprotect (m : Machine.t) ~addr ~pages perm =
  check_aligned "mprotect" addr;
  check_pages "mprotect" pages;
  Stats.count_syscall m.stats Stats.Sys_mprotect;
  trace_syscall m "mprotect" pages;
  let page = Addr.page_index addr in
  Page_table.set_perm_range m.page_table ~page ~pages perm;
  shootdown_range m ~page ~pages

let munmap (m : Machine.t) ~addr ~pages =
  check_aligned "munmap" addr;
  check_pages "munmap" pages;
  Stats.count_syscall m.stats Stats.Sys_munmap;
  trace_syscall m "munmap" pages;
  let page = Addr.page_index addr in
  (* Validate the whole range up front: a failed call must not leave a
     prefix unmapped with its TLB entries still live. *)
  for p = page to page + pages - 1 do
    if not (Page_table.is_mapped m.page_table ~page:p) then
      invalid_arg (Printf.sprintf "Page_table.unmap: page %d not mapped" p)
  done;
  for p = page to page + pages - 1 do
    let entry = Page_table.unmap m.page_table ~page:p in
    Frame_table.decr_ref m.frames entry.frame
  done;
  shootdown_range m ~page ~pages

let dummy_syscall (m : Machine.t) =
  Stats.count_syscall m.stats Stats.Sys_dummy;
  trace_syscall m "dummy" 0

let page_perm (m : Machine.t) addr =
  match Page_table.lookup m.page_table ~page:(Addr.page_index addr) with
  | Some { perm; _ } -> Some perm
  | None -> None
