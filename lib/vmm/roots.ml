(* The simulated mutator root set a conservative collector scans:
   machine registers, stack words, and global slots.  Values are plain
   words; 0 marks an empty slot (the VA base is non-zero, so no valid
   pointer is ever 0). *)

type source =
  | Register of int
  | Stack of int
  | Global of int

let source_label = function
  | Register i -> Printf.sprintf "register[%d]" i
  | Stack i -> Printf.sprintf "stack[%d]" i
  | Global i -> Printf.sprintf "global[%d]" i

type t = {
  registers : int array;
  mutable stack : int array;
  mutable stack_depth : int;
  globals : (int, int) Hashtbl.t;
}

let create ?(registers = 16) () =
  if registers < 1 then invalid_arg "Roots.create: registers < 1";
  {
    registers = Array.make registers 0;
    stack = Array.make 64 0;
    stack_depth = 0;
    globals = Hashtbl.create 16;
  }

let register_count t = Array.length t.registers

let set_register t i v =
  if i < 0 || i >= Array.length t.registers then
    invalid_arg "Roots.set_register: register index out of range";
  t.registers.(i) <- v

let clear_register t i = set_register t i 0

let push_stack t v =
  if t.stack_depth = Array.length t.stack then begin
    let bigger = Array.make (2 * Array.length t.stack) 0 in
    Array.blit t.stack 0 bigger 0 t.stack_depth;
    t.stack <- bigger
  end;
  t.stack.(t.stack_depth) <- v;
  t.stack_depth <- t.stack_depth + 1

let pop_stack t =
  if t.stack_depth = 0 then None
  else begin
    t.stack_depth <- t.stack_depth - 1;
    Some t.stack.(t.stack_depth)
  end

let stack_depth t = t.stack_depth

let set_global t ~slot v =
  if v = 0 then Hashtbl.remove t.globals slot
  else Hashtbl.replace t.globals slot v

let clear_global t ~slot = Hashtbl.remove t.globals slot
let global t ~slot = Hashtbl.find_opt t.globals slot

(* Deterministic enumeration: registers in index order, the stack bottom
   to top, globals in slot order.  Empty (zero) words are skipped — they
   can never witness a pointer. *)
let iter_words t f =
  Array.iteri (fun i v -> if v <> 0 then f (Register i) v) t.registers;
  for i = 0 to t.stack_depth - 1 do
    if t.stack.(i) <> 0 then f (Stack i) t.stack.(i)
  done;
  Hashtbl.fold (fun slot v acc -> (slot, v) :: acc) t.globals []
  |> List.sort compare
  |> List.iter (fun (slot, v) -> f (Global slot) v)

let word_count t =
  Array.length t.registers + t.stack_depth + Hashtbl.length t.globals

(* Heap-word enumeration for the mark phase: every word-aligned 8-byte
   word fully inside [addr, addr+bytes), read in kernel mode so scanning
   neither trips page protections nor perturbs user-level access
   statistics.  Pointers are stored word-aligned by convention, so the
   sub-word tail cannot hold one and is not scanned. *)
let word_bytes = 8

let iter_heap_words machine ~addr ~bytes f =
  let first = (addr + word_bytes - 1) / word_bytes * word_bytes in
  let limit = addr + bytes in
  let w = ref first in
  while !w + word_bytes <= limit do
    let v = Mmu.load_exempt machine !w ~width:word_bytes in
    if v <> 0 then f !w v;
    w := !w + word_bytes
  done

let heap_word_count ~addr ~bytes =
  let first = (addr + word_bytes - 1) / word_bytes * word_bytes in
  let limit = addr + bytes in
  if limit - first < word_bytes then 0 else (limit - first) / word_bytes
