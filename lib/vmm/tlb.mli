(** A set-associative translation lookaside buffer model.

    The paper's second overhead source is TLB pressure: every live object
    sits on its own virtual page, so programs touch far more distinct
    pages than their native versions.  We model a small data TLB
    (default: 64 entries, 4-way, LRU within a set) and charge
    {!Cost_model.t.tlb_miss_penalty} per miss.

    Entries cache the full packed page-table entry — translation {e and}
    protection bits — so a TLB hit answers an access without touching
    the page table at all (real hardware caches protection bits the same
    way).  Correctness therefore rests on shootdowns: the kernel
    invalidates affected pages on every [mprotect], [munmap] and remap,
    making stale entries impossible by construction. *)

type t

val create : ?entries:int -> ?ways:int -> unit -> t
(** Default: 64 entries, 4 ways. [entries] must be a multiple of [ways]. *)

val lookup_pte : t -> Stats.t -> page:int -> Pte.t
(** Probe the TLB: the cached packed entry, or {!Pte.none} on a miss.
    Counts a hit or a miss; allocation-free — the MMU fast path. *)

val lookup : t -> Stats.t -> page:int -> (Frame_table.frame * Perm.t) option
(** Convenience view of {!lookup_pte} for tests and diagnostics. *)

val insert_pte : t -> page:int -> pte:Pte.t -> unit
(** Fill after a page-table walk (evicts LRU way of the set). *)

val insert : t -> page:int -> frame:Frame_table.frame -> perm:Perm.t -> unit

val invalidate_page : t -> page:int -> unit
(** Single-page shootdown (on remap of one page). *)

val invalidate_range : t -> page:int -> pages:int -> unit
(** Ranged shootdown (on [mprotect]/[munmap] of a region): one sweep
    over the TLB for wide ranges rather than a probe per page. *)

val flush : t -> Stats.t -> unit
(** Full flush (e.g. on simulated [fork]/context switch). *)

val capacity : t -> int
