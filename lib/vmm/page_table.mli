(** The per-process page table: virtual page -> (physical frame, permission).

    This is the data structure the paper's whole detection argument rests
    on: distinct virtual pages may map to one frame, and permissions are
    per *virtual* page, so protecting a freed object's shadow page does
    not disturb other objects sharing the frame.

    Implementation: a two-level radix table (directory of lazily
    allocated chunks of packed {!Pte} entries) — lookup is two array
    indexations, no hashing and no allocation. *)

type t

type entry = { frame : Frame_table.frame; perm : Perm.t }

val create : unit -> t

val map : t -> Stats.t -> page:int -> frame:Frame_table.frame -> perm:Perm.t -> unit
(** Install a mapping for a virtual page.  The page must not already be
    mapped (the kernel unmaps first when re-mapping). *)

val unmap : t -> page:int -> entry
(** Remove and return the entry; raises [Invalid_argument] if unmapped. *)

val lookup : t -> page:int -> entry option

val pte : t -> page:int -> Pte.t
(** Allocation-free lookup: the packed entry, or {!Pte.none}.  This is
    the MMU's table walk; every call counts toward {!walk_count}. *)

val set_perm : t -> page:int -> Perm.t -> unit
(** Change protection bits; raises [Invalid_argument] if unmapped. *)

val set_perm_range : t -> page:int -> pages:int -> Perm.t -> unit
(** {!set_perm} over a contiguous range, one chunk traversal per chunk
    touched.  Validates the whole range before writing, so a failed call
    leaves the table unchanged. *)

val is_mapped : t -> page:int -> bool
val mapped_pages : t -> int
(** Number of live virtual-page mappings (virtual memory footprint). *)

val iter : t -> (int -> entry -> unit) -> unit

val walk_count : t -> int
(** Diagnostic: total table walks ({!pte}/{!lookup} calls) performed.
    The fast-path tests use this to prove that TLB hits skip the page
    table entirely. *)
