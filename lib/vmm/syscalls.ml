type 'a outcome = ('a, Fault_plan.error) result

let kind_of_call = function
  | Fault_plan.Mmap | Fault_plan.Mmap_fixed -> Stats.Sys_mmap
  | Fault_plan.Mremap -> Stats.Sys_mremap
  | Fault_plan.Mprotect -> Stats.Sys_mprotect
  | Fault_plan.Munmap -> Stats.Sys_munmap

let trace_fault (m : Machine.t) name error =
  if Telemetry.Sink.enabled m.trace then
    Telemetry.Sink.emit_always m.trace (fun () ->
        Telemetry.Event.Syscall_fault
          {
            name;
            errno =
              Fault_plan.errno_label
                (match error with
                 | Fault_plan.Transient e | Fault_plan.Fatal e -> e);
            transient = Fault_plan.is_transient error;
          })

(* An injected failure still crosses into the kernel (the real syscall
   returns -1 after doing the work of rejecting you), so it costs a
   kernel round trip: the per-kind syscall counter feeds the cost model
   exactly as a successful call would. *)
let inject (m : Machine.t) call name =
  match
    Fault_plan.decide m.fault_plan call ~va_bytes:(Machine.va_bytes_used m)
  with
  | None -> None
  | Some error ->
    Stats.count_syscall m.stats (kind_of_call call);
    Stats.count_syscall_failed m.stats;
    trace_fault m name error;
    Some error

(* The raw kernel layer rejects malformed requests (unaligned address,
   non-positive page count, pages outside the mapping) by raising
   [Invalid_argument]; at this boundary those become typed EINVAL
   results.  The kernel validates before mutating, so an EINVAL return
   leaves the machine unchanged. *)
let einval (m : Machine.t) name : 'a outcome =
  let error = Fault_plan.Fatal Fault_plan.Einval in
  Stats.count_syscall_failed m.stats;
  trace_fault m name error;
  Error error

let guard m name thunk =
  match thunk () with
  | v -> Ok v
  | exception Invalid_argument _ -> einval m name

let mmap m ~pages =
  match inject m Fault_plan.Mmap "mmap" with
  | Some e -> Error e
  | None -> guard m "mmap" (fun () -> Kernel.mmap m ~pages)

let mmap_fixed m ~addr ~pages =
  match inject m Fault_plan.Mmap_fixed "mmap" with
  | Some e -> Error e
  | None -> guard m "mmap" (fun () -> Kernel.mmap_fixed m ~addr ~pages)

let mremap_alias m ~src ~pages =
  match inject m Fault_plan.Mremap "mremap" with
  | Some e -> Error e
  | None -> guard m "mremap" (fun () -> Kernel.mremap_alias m ~src ~pages)

let mremap_alias_slab m ~src ~pages ~copies =
  match inject m Fault_plan.Mremap "mremap_slab" with
  | Some e -> Error e
  | None ->
    guard m "mremap_slab" (fun () -> Kernel.mremap_alias_slab m ~src ~pages ~copies)

let mremap_alias_at m ~src ~dst ~pages =
  match inject m Fault_plan.Mremap "mremap" with
  | Some e -> Error e
  | None ->
    guard m "mremap" (fun () -> Kernel.mremap_alias_at m ~src ~dst ~pages)

let mprotect m ~addr ~pages perm =
  match inject m Fault_plan.Mprotect "mprotect" with
  | Some e -> Error e
  | None -> guard m "mprotect" (fun () -> Kernel.mprotect m ~addr ~pages perm)

let munmap m ~addr ~pages =
  match inject m Fault_plan.Munmap "munmap" with
  | Some e -> Error e
  | None -> guard m "munmap" (fun () -> Kernel.munmap m ~addr ~pages)

let ok_or_raise ~name = function
  | Ok v -> v
  | Error error -> raise (Fault_plan.Syscall_failure { name; error })

(* Pure range merging for batched retirement: sort page-aligned
   [(base, pages)] ranges and fuse adjacent or overlapping ones, so an
   epoch's worth of per-object protection flips becomes the minimum
   number of ranged calls.  No machine state is touched here — this is
   the planning half; the caller issues one syscall per merged run. *)
let coalesce_ranges ranges =
  let ranges =
    List.filter (fun ((_ : Addr.t), pages) -> pages > 0) ranges
  in
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare (a : Addr.t) b) ranges
  in
  let fuse acc (base, pages) =
    match acc with
    | (cur_base, cur_pages) :: rest
      when base <= cur_base + (cur_pages * Addr.page_size) ->
      let cur_end = cur_base + (cur_pages * Addr.page_size) in
      let new_end = max cur_end (base + (pages * Addr.page_size)) in
      (cur_base, (new_end - cur_base) / Addr.page_size) :: rest
    | _ -> (base, pages) :: acc
  in
  List.rev (List.fold_left fuse [] sorted)
