(** Deterministic, seeded syscall fault injection.

    A plan is a list of rules consulted by {!Syscalls} on every
    paper-facing kernel call; the first rule whose trigger fires decides
    the injected error.  All randomness comes from the plan's own
    splitmix64 stream, so a (seed, rules, workload) triple always
    reproduces the same fault timeline — a failed campaign run can be
    replayed exactly.

    A machine carries a plan ({!Machine.t}'s [fault_plan] field; the
    default from {!none} never fires), so fault behaviour follows the
    machine through every scheme built on it. *)

type errno =
  | Enomem  (** kernel out of memory for page tables / VMAs *)
  | Eagain  (** transient resource pressure *)
  | Eacces
  | Einval  (** malformed request — also what {!Syscalls} maps the raw
                kernel layer's [Invalid_argument] rejections to *)
  | Enospc  (** virtual-address budget exhausted (§3.4) *)

type error =
  | Transient of errno  (** worth retrying with backoff *)
  | Fatal of errno      (** retrying cannot help *)

exception Syscall_failure of { name : string; error : error }
(** Raised by raising convenience wrappers (e.g. {!Shadow_heap.malloc})
    when the typed path underneath them fails and no caller is prepared
    to degrade gracefully. *)

type call =
  | Mmap
  | Mmap_fixed
  | Mremap
  | Mprotect
  | Munmap

type trigger =
  | Rate of float  (** each matching call fails with this probability *)
  | Nth_call of int  (** exactly the nth matching call (1-based) fails *)
  | Burst of { first : int; length : int }
      (** matching calls numbered [first .. first+length-1] all fail *)
  | Va_budget of int
      (** fires once the machine has handed out more than this many
          bytes of virtual address space — the §3.4 exhaustion model as
          an injectable failure mode *)

type rule = {
  calls : call list;  (** which syscalls the rule covers; [[]] = all *)
  trigger : trigger;
  error : error;
}

type t

val create : ?seed:int -> rule list -> t
(** Raises [Invalid_argument] if any [Rate] probability is outside
    [0, 1]. *)

val none : unit -> t
(** The empty plan: never injects. *)

val has_rules : t -> bool

val decide : t -> call -> va_bytes:int -> error option
(** Advance the per-call attempt counter and report whether this call
    should fail.  [va_bytes] is the machine's current
    {!Machine.va_bytes_used}. *)

val injected : t -> int
(** Total faults injected so far. *)

val attempts : t -> call -> int
(** Calls of this kind seen so far (including injected ones). *)

val call_label : call -> string
val errno_label : errno -> string
val error_label : error -> string
val is_transient : error -> bool
