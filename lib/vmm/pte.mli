(** Packed page-table entries.

    The translation fast path never allocates: a mapping is a single
    tagged integer [(frame lsl 2) lor perm_code], and {!none} ([-1])
    marks an unmapped page.  The radix {!Page_table}, the {!Tlb} and the
    {!Mmu} all traffic in this representation; the record view
    ({!Page_table.entry}) is materialised only on the slow path. *)

type t = int

val none : t
(** The absent entry; the only negative value in circulation. *)

val make : frame:Frame_table.frame -> perm:Perm.t -> t
val is_present : t -> bool
val frame : t -> Frame_table.frame
val perm_code : t -> int
val perm : t -> Perm.t
val allows : t -> Perm.access -> bool
val with_perm : t -> Perm.t -> t
(** Same frame, new protection bits (the [mprotect] primitive). *)
