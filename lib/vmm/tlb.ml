(* Set-associative, LRU per set.  Each set is a small array of slots; the
   LRU order is tracked with a monotonically increasing use stamp.

   Slots cache the whole packed page-table entry — translation *and*
   protection bits — so a hit answers an access without consulting the
   page table at all.  The contract that makes this sound: every writer
   of the page table (Kernel.map_page remaps, mprotect, munmap) shoots
   the affected pages down here first. *)

type slot = { mutable page : int; mutable pte : Pte.t; mutable stamp : int }

type t = {
  sets : slot array array;
  n_sets : int;
  mutable clock : int;
}

let invalid_page = -1

let create ?(entries = 64) ?(ways = 4) () =
  if entries mod ways <> 0 then invalid_arg "Tlb.create: entries mod ways <> 0";
  let n_sets = entries / ways in
  let make_slot _ = { page = invalid_page; pte = Pte.none; stamp = 0 } in
  {
    sets = Array.init n_sets (fun _ -> Array.init ways make_slot);
    n_sets;
    clock = 0;
  }

let set_of t page = t.sets.(page mod t.n_sets)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* The fast path: packed entry on a hit, [Pte.none] on a miss.  No
   allocation either way. *)
let lookup_pte t stats ~page =
  let set = set_of t page in
  let ways = Array.length set in
  let rec find i =
    if i >= ways then Pte.none
    else
      let s = Array.unsafe_get set i in
      if s.page = page then begin
        s.stamp <- tick t;
        s.pte
      end
      else find (i + 1)
  in
  let pte = find 0 in
  if Pte.is_present pte then Stats.count_tlb_hit stats
  else Stats.count_tlb_miss stats;
  pte

let lookup t stats ~page =
  let pte = lookup_pte t stats ~page in
  if Pte.is_present pte then Some (Pte.frame pte, Pte.perm pte) else None

let insert_pte t ~page ~pte =
  let set = set_of t page in
  (* Reuse an existing slot for this page if present, else evict LRU. *)
  let victim = ref set.(0) in
  Array.iter
    (fun s ->
      if s.page = page then victim := s
      else if !victim.page <> page && s.stamp < !victim.stamp then victim := s)
    set;
  let v = !victim in
  v.page <- page;
  v.pte <- pte;
  v.stamp <- tick t

let insert t ~page ~frame ~perm = insert_pte t ~page ~pte:(Pte.make ~frame ~perm)

let invalidate_page t ~page =
  let set = set_of t page in
  Array.iter (fun s -> if s.page = page then s.page <- invalid_page) set

(* Ranged shootdown.  A run of [n_sets] consecutive pages touches every
   set, so for wide ranges one sweep over all slots beats per-page set
   probing; narrow ranges keep the per-page path. *)
let invalidate_range t ~page ~pages =
  if pages >= t.n_sets then
    Array.iter
      (fun set ->
        Array.iter
          (fun s ->
            if s.page >= page && s.page < page + pages then
              s.page <- invalid_page)
          set)
      t.sets
  else
    for p = page to page + pages - 1 do
      invalidate_page t ~page:p
    done

let flush t stats =
  Array.iter (fun set -> Array.iter (fun s -> s.page <- invalid_page) set) t.sets;
  Stats.count_tlb_flush stats

let capacity t = t.n_sets * Array.length t.sets.(0)
