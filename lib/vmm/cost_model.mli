(** Cycle cost model.

    Converts a {!Stats.snapshot} into simulated cycles.  One profile per
    "compiler" reproduces the paper's native-GCC vs. LLVM-base code
    quality distinction: the [code_quality] factor scales the cost of
    instructions and memory accesses (the work the compiler emitted), but
    not syscalls or TLB miss penalties (fixed hardware/OS costs).

    Default constants are chosen to be in the ballpark of the paper's
    2006-era Xeon: ~1 cycle per simple instruction, ~30 cycles per TLB
    miss walk, ~2500 cycles per system call round trip. *)

type t = {
  name : string;
  instr_cost : float;        (** cycles per accounted instruction *)
  load_cost : float;         (** cycles per load (cache modeled implicitly) *)
  store_cost : float;        (** cycles per store *)
  tlb_miss_penalty : float;  (** extra cycles per TLB miss *)
  cache_miss_penalty : float;
      (** extra cycles per data-cache miss; 0 in the default profiles
          (cache effects are folded into the code-quality factor, to keep
          the paper-table calibration), nonzero only in the cache
          ablation via {!with_cache_penalty} *)
  shootdown_cost : float;
      (** extra cycles per ranged TLB shootdown operation (an IPI on a
          real SMP); 0 in the default profiles — the calibration folds
          shootdown cost into [syscall_cost], since every shootdown rides
          an [mprotect]/[munmap] — nonzero only in the shootdown ablation
          via {!with_shootdown_cost}.  Charged per {e operation}, so
          batching N pages into one shootdown is N times cheaper than N
          per-page calls. *)
  syscall_cost : float;      (** cycles per syscall (entry/exit + work) *)
  fault_cost : float;        (** cycles to deliver a trap to the handler *)
  code_quality : float;      (** multiplier on compiler-emitted work *)
}

val native : t
(** GCC [-O3]-quality code. *)

val llvm_base : t
(** The paper's LLVM C-backend baseline: same machine, slightly different
    (here: marginally worse) code quality than GCC. *)

val with_code_quality : t -> float -> t
(** Replace the code-quality factor, e.g. to model Automatic Pool
    Allocation's locality effects on a specific workload. *)

val with_cache_penalty : t -> float -> t
(** Charge this many cycles per data-cache miss (cache ablation). *)

val with_shootdown_cost : t -> float -> t
(** Charge this many cycles per ranged TLB shootdown (batching
    ablation). *)

val cycles : t -> Stats.snapshot -> float
(** Total simulated cycles for a snapshot (typically a {!Stats.diff}). *)

val pp : Format.formatter -> t -> unit
