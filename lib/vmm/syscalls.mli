(** The typed, injectable syscall boundary.

    Same operations as {!Kernel}, but every call (1) consults the
    machine's {!Fault_plan} and may fail without touching the machine,
    and (2) returns a typed [result] instead of raising — including the
    raw layer's [Invalid_argument] rejections, which surface here as
    [Fatal Einval].  Failed attempts still cost a kernel round trip
    (the per-kind syscall counter) and are counted in
    [Stats.syscalls_failed] and traced as [Syscall_fault] events.

    Resilient code (the governed schemes, via [Runtime.Retry]) lives on
    this interface; {!Kernel} remains the raw layer whose misuse is a
    programming error. *)

type 'a outcome = ('a, Fault_plan.error) result

val mmap : Machine.t -> pages:int -> Addr.t outcome
val mmap_fixed : Machine.t -> addr:Addr.t -> pages:int -> unit outcome
val mremap_alias : Machine.t -> src:Addr.t -> pages:int -> Addr.t outcome

val mremap_alias_slab :
  Machine.t -> src:Addr.t -> pages:int -> copies:int -> Addr.t outcome
(** Injectable {!Kernel.mremap_alias_slab} (fault class [Mremap]). *)

val mremap_alias_at :
  Machine.t -> src:Addr.t -> dst:Addr.t -> pages:int -> unit outcome

val mprotect : Machine.t -> addr:Addr.t -> pages:int -> Perm.t -> unit outcome
val munmap : Machine.t -> addr:Addr.t -> pages:int -> unit outcome

val ok_or_raise : name:string -> 'a outcome -> 'a
(** Unwrap, raising {!Fault_plan.Syscall_failure} on error — for
    callers with no graceful-degradation path. *)

val coalesce_ranges : (Addr.t * int) list -> (Addr.t * int) list
(** Merge page-aligned [(base, pages)] ranges: sort by base and fuse
    adjacent/overlapping runs.  Pure planning step for epoch-batched
    retirement — empty and non-positive ranges are dropped, the result
    is sorted and minimal.  No syscall is issued. *)
