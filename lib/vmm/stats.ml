type syscall_kind =
  | Sys_mmap
  | Sys_mremap
  | Sys_mprotect
  | Sys_munmap
  | Sys_dummy

(* The machine's event counters ARE telemetry counters: every count_*
   site below writes straight into a [Telemetry.Metrics] registry
   through handles cached at creation time, so the hot path stays one
   mutable-field update and there is no separate sync step — the
   registry exporters always see the live values. *)
type t = {
  registry : Telemetry.Metrics.t;
  instructions : Telemetry.Metrics.counter;
  loads : Telemetry.Metrics.counter;
  stores : Telemetry.Metrics.counter;
  tlb_hits : Telemetry.Metrics.counter;
  tlb_misses : Telemetry.Metrics.counter;
  tlb_flushes : Telemetry.Metrics.counter;
  tlb_shootdowns : Telemetry.Metrics.counter;
  tlb_shootdown_pages : Telemetry.Metrics.counter;
  cache_hits : Telemetry.Metrics.counter;
  cache_misses : Telemetry.Metrics.counter;
  syscalls_mmap : Telemetry.Metrics.counter;
  syscalls_mremap : Telemetry.Metrics.counter;
  syscalls_mprotect : Telemetry.Metrics.counter;
  syscalls_munmap : Telemetry.Metrics.counter;
  syscalls_dummy : Telemetry.Metrics.counter;
  faults : Telemetry.Metrics.counter;
  syscalls_failed : Telemetry.Metrics.counter;
  syscall_retries : Telemetry.Metrics.counter;
  pages_mapped : Telemetry.Metrics.counter;
  frames_allocated : Telemetry.Metrics.counter;
  alloc_ops : Telemetry.Metrics.counter;
  free_ops : Telemetry.Metrics.counter;
}

type snapshot = {
  instructions : int;
  loads : int;
  stores : int;
  tlb_hits : int;
  tlb_misses : int;
  tlb_flushes : int;
  tlb_shootdowns : int;
  tlb_shootdown_pages : int;
  cache_hits : int;
  cache_misses : int;
  syscalls_mmap : int;
  syscalls_mremap : int;
  syscalls_mprotect : int;
  syscalls_munmap : int;
  syscalls_dummy : int;
  faults : int;
  syscalls_failed : int;
  syscall_retries : int;
  pages_mapped : int;
  frames_allocated : int;
  alloc_ops : int;
  free_ops : int;
}

let create ?registry () : t =
  let registry =
    match registry with
    | Some r -> r
    | None -> Telemetry.Metrics.create ()
  in
  let c name = Telemetry.Metrics.counter registry name in
  {
    registry;
    instructions = c "vmm.instructions";
    loads = c "vmm.loads";
    stores = c "vmm.stores";
    tlb_hits = c "vmm.tlb_hits";
    tlb_misses = c "vmm.tlb_misses";
    tlb_flushes = c "vmm.tlb_flushes";
    tlb_shootdowns = c "vmm.tlb_shootdowns";
    tlb_shootdown_pages = c "vmm.tlb_shootdown_pages";
    cache_hits = c "vmm.cache_hits";
    cache_misses = c "vmm.cache_misses";
    syscalls_mmap = c "vmm.syscalls_mmap";
    syscalls_mremap = c "vmm.syscalls_mremap";
    syscalls_mprotect = c "vmm.syscalls_mprotect";
    syscalls_munmap = c "vmm.syscalls_munmap";
    syscalls_dummy = c "vmm.syscalls_dummy";
    faults = c "vmm.faults";
    syscalls_failed = c "vmm.syscalls_failed";
    syscall_retries = c "vmm.syscall_retries";
    pages_mapped = c "vmm.pages_mapped";
    frames_allocated = c "vmm.frames_allocated";
    alloc_ops = c "vmm.alloc_ops";
    free_ops = c "vmm.free_ops";
  }

let registry (t : t) = t.registry

let count_instructions (t : t) n = Telemetry.Metrics.incr ~by:n t.instructions
let count_load (t : t) = Telemetry.Metrics.incr t.loads
let count_store (t : t) = Telemetry.Metrics.incr t.stores
let count_tlb_hit (t : t) = Telemetry.Metrics.incr t.tlb_hits
let count_tlb_miss (t : t) = Telemetry.Metrics.incr t.tlb_misses
let count_tlb_flush (t : t) = Telemetry.Metrics.incr t.tlb_flushes

let count_tlb_shootdown (t : t) ~pages =
  Telemetry.Metrics.incr t.tlb_shootdowns;
  Telemetry.Metrics.incr ~by:pages t.tlb_shootdown_pages

let count_cache_hit (t : t) = Telemetry.Metrics.incr t.cache_hits
let count_cache_miss (t : t) = Telemetry.Metrics.incr t.cache_misses

let count_syscall (t : t) = function
  | Sys_mmap -> Telemetry.Metrics.incr t.syscalls_mmap
  | Sys_mremap -> Telemetry.Metrics.incr t.syscalls_mremap
  | Sys_mprotect -> Telemetry.Metrics.incr t.syscalls_mprotect
  | Sys_munmap -> Telemetry.Metrics.incr t.syscalls_munmap
  | Sys_dummy -> Telemetry.Metrics.incr t.syscalls_dummy

let count_fault (t : t) = Telemetry.Metrics.incr t.faults
let count_syscall_failed (t : t) = Telemetry.Metrics.incr t.syscalls_failed
let count_syscall_retry (t : t) = Telemetry.Metrics.incr t.syscall_retries
let count_page_mapped (t : t) = Telemetry.Metrics.incr t.pages_mapped

let count_frame_allocated (t : t) =
  Telemetry.Metrics.incr t.frames_allocated

let count_alloc_op (t : t) = Telemetry.Metrics.incr t.alloc_ops
let count_free_op (t : t) = Telemetry.Metrics.incr t.free_ops

let snapshot (t : t) : snapshot =
  let v = Telemetry.Metrics.counter_value in
  {
    instructions = v t.instructions;
    loads = v t.loads;
    stores = v t.stores;
    tlb_hits = v t.tlb_hits;
    tlb_misses = v t.tlb_misses;
    tlb_flushes = v t.tlb_flushes;
    tlb_shootdowns = v t.tlb_shootdowns;
    tlb_shootdown_pages = v t.tlb_shootdown_pages;
    cache_hits = v t.cache_hits;
    cache_misses = v t.cache_misses;
    syscalls_mmap = v t.syscalls_mmap;
    syscalls_mremap = v t.syscalls_mremap;
    syscalls_mprotect = v t.syscalls_mprotect;
    syscalls_munmap = v t.syscalls_munmap;
    syscalls_dummy = v t.syscalls_dummy;
    faults = v t.faults;
    syscalls_failed = v t.syscalls_failed;
    syscall_retries = v t.syscall_retries;
    pages_mapped = v t.pages_mapped;
    frames_allocated = v t.frames_allocated;
    alloc_ops = v t.alloc_ops;
    free_ops = v t.free_ops;
  }

let zero : snapshot =
  {
    instructions = 0;
    loads = 0;
    stores = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    tlb_flushes = 0;
    tlb_shootdowns = 0;
    tlb_shootdown_pages = 0;
    cache_hits = 0;
    cache_misses = 0;
    syscalls_mmap = 0;
    syscalls_mremap = 0;
    syscalls_mprotect = 0;
    syscalls_munmap = 0;
    syscalls_dummy = 0;
    faults = 0;
    syscalls_failed = 0;
    syscall_retries = 0;
    pages_mapped = 0;
    frames_allocated = 0;
    alloc_ops = 0;
    free_ops = 0;
  }

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    instructions = a.instructions - b.instructions;
    loads = a.loads - b.loads;
    stores = a.stores - b.stores;
    tlb_hits = a.tlb_hits - b.tlb_hits;
    tlb_misses = a.tlb_misses - b.tlb_misses;
    tlb_flushes = a.tlb_flushes - b.tlb_flushes;
    tlb_shootdowns = a.tlb_shootdowns - b.tlb_shootdowns;
    tlb_shootdown_pages = a.tlb_shootdown_pages - b.tlb_shootdown_pages;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    syscalls_mmap = a.syscalls_mmap - b.syscalls_mmap;
    syscalls_mremap = a.syscalls_mremap - b.syscalls_mremap;
    syscalls_mprotect = a.syscalls_mprotect - b.syscalls_mprotect;
    syscalls_munmap = a.syscalls_munmap - b.syscalls_munmap;
    syscalls_dummy = a.syscalls_dummy - b.syscalls_dummy;
    faults = a.faults - b.faults;
    syscalls_failed = a.syscalls_failed - b.syscalls_failed;
    syscall_retries = a.syscall_retries - b.syscall_retries;
    pages_mapped = a.pages_mapped - b.pages_mapped;
    frames_allocated = a.frames_allocated - b.frames_allocated;
    alloc_ops = a.alloc_ops - b.alloc_ops;
    free_ops = a.free_ops - b.free_ops;
  }

(* One name/value pair per snapshot field, under the "vmm." namespace —
   the same names the live registry carries. *)
let field_values (s : snapshot) =
  [
    ("vmm.instructions", s.instructions);
    ("vmm.loads", s.loads);
    ("vmm.stores", s.stores);
    ("vmm.tlb_hits", s.tlb_hits);
    ("vmm.tlb_misses", s.tlb_misses);
    ("vmm.tlb_flushes", s.tlb_flushes);
    ("vmm.tlb_shootdowns", s.tlb_shootdowns);
    ("vmm.tlb_shootdown_pages", s.tlb_shootdown_pages);
    ("vmm.cache_hits", s.cache_hits);
    ("vmm.cache_misses", s.cache_misses);
    ("vmm.syscalls_mmap", s.syscalls_mmap);
    ("vmm.syscalls_mremap", s.syscalls_mremap);
    ("vmm.syscalls_mprotect", s.syscalls_mprotect);
    ("vmm.syscalls_munmap", s.syscalls_munmap);
    ("vmm.syscalls_dummy", s.syscalls_dummy);
    ("vmm.faults", s.faults);
    ("vmm.syscalls_failed", s.syscalls_failed);
    ("vmm.syscall_retries", s.syscall_retries);
    ("vmm.pages_mapped", s.pages_mapped);
    ("vmm.frames_allocated", s.frames_allocated);
    ("vmm.alloc_ops", s.alloc_ops);
    ("vmm.free_ops", s.free_ops);
  ]

let accumulate registry (s : snapshot) =
  List.iter
    (fun (name, v) ->
      Telemetry.Metrics.incr ~by:v (Telemetry.Metrics.counter registry name))
    (field_values s)

let snapshot_to_json s =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) (field_values s))

let sum (a : snapshot) (b : snapshot) : snapshot =
  {
    instructions = a.instructions + b.instructions;
    loads = a.loads + b.loads;
    stores = a.stores + b.stores;
    tlb_hits = a.tlb_hits + b.tlb_hits;
    tlb_misses = a.tlb_misses + b.tlb_misses;
    tlb_flushes = a.tlb_flushes + b.tlb_flushes;
    tlb_shootdowns = a.tlb_shootdowns + b.tlb_shootdowns;
    tlb_shootdown_pages = a.tlb_shootdown_pages + b.tlb_shootdown_pages;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    syscalls_mmap = a.syscalls_mmap + b.syscalls_mmap;
    syscalls_mremap = a.syscalls_mremap + b.syscalls_mremap;
    syscalls_mprotect = a.syscalls_mprotect + b.syscalls_mprotect;
    syscalls_munmap = a.syscalls_munmap + b.syscalls_munmap;
    syscalls_dummy = a.syscalls_dummy + b.syscalls_dummy;
    faults = a.faults + b.faults;
    syscalls_failed = a.syscalls_failed + b.syscalls_failed;
    syscall_retries = a.syscall_retries + b.syscall_retries;
    pages_mapped = a.pages_mapped + b.pages_mapped;
    frames_allocated = a.frames_allocated + b.frames_allocated;
    alloc_ops = a.alloc_ops + b.alloc_ops;
    free_ops = a.free_ops + b.free_ops;
  }

let total_syscalls s =
  s.syscalls_mmap + s.syscalls_mremap + s.syscalls_mprotect + s.syscalls_munmap
  + s.syscalls_dummy

let protection_syscalls s =
  s.syscalls_mremap + s.syscalls_mprotect + s.syscalls_munmap

let heap_ops s = s.alloc_ops + s.free_ops

(* The batching win as one number: protection syscalls divided by heap
   operations.  [None] when the snapshot saw no allocator traffic, so
   exporters can distinguish "no data" from a true zero. *)
let syscalls_per_op s =
  let ops = heap_ops s in
  if ops = 0 then None
  else Some (float_of_int (protection_syscalls s) /. float_of_int ops)

let pp ppf s =
  Format.fprintf ppf
    "@[<v>instructions: %d@ loads: %d@ stores: %d@ tlb hits/misses: %d/%d@ \
     tlb shootdowns: %d (%d pages)@ cache hits/misses: %d/%d@ \
     syscalls (mmap/mremap/mprotect/munmap/dummy): %d/%d/%d/%d/%d@ faults: \
     %d@ syscalls failed/retried: %d/%d@ pages mapped: %d@ frames \
     allocated: %d@ heap ops (alloc/free): %d/%d@]"
    s.instructions s.loads s.stores s.tlb_hits s.tlb_misses s.tlb_shootdowns
    s.tlb_shootdown_pages s.cache_hits
    s.cache_misses s.syscalls_mmap
    s.syscalls_mremap s.syscalls_mprotect s.syscalls_munmap s.syscalls_dummy
    s.faults s.syscalls_failed s.syscall_retries s.pages_mapped
    s.frames_allocated s.alloc_ops s.free_ops
