type syscall_kind =
  | Sys_mmap
  | Sys_mremap
  | Sys_mprotect
  | Sys_munmap
  | Sys_dummy

type t = {
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable tlb_flushes : int;
  mutable tlb_shootdowns : int;
  mutable tlb_shootdown_pages : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable syscalls_mmap : int;
  mutable syscalls_mremap : int;
  mutable syscalls_mprotect : int;
  mutable syscalls_munmap : int;
  mutable syscalls_dummy : int;
  mutable faults : int;
  mutable syscalls_failed : int;
  mutable syscall_retries : int;
  mutable pages_mapped : int;
  mutable frames_allocated : int;
}

type snapshot = {
  instructions : int;
  loads : int;
  stores : int;
  tlb_hits : int;
  tlb_misses : int;
  tlb_flushes : int;
  tlb_shootdowns : int;
  tlb_shootdown_pages : int;
  cache_hits : int;
  cache_misses : int;
  syscalls_mmap : int;
  syscalls_mremap : int;
  syscalls_mprotect : int;
  syscalls_munmap : int;
  syscalls_dummy : int;
  faults : int;
  syscalls_failed : int;
  syscall_retries : int;
  pages_mapped : int;
  frames_allocated : int;
}

let create () : t =
  {
    instructions = 0;
    loads = 0;
    stores = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    tlb_flushes = 0;
    tlb_shootdowns = 0;
    tlb_shootdown_pages = 0;
    cache_hits = 0;
    cache_misses = 0;
    syscalls_mmap = 0;
    syscalls_mremap = 0;
    syscalls_mprotect = 0;
    syscalls_munmap = 0;
    syscalls_dummy = 0;
    faults = 0;
    syscalls_failed = 0;
    syscall_retries = 0;
    pages_mapped = 0;
    frames_allocated = 0;
  }

let count_instructions (t : t) n = t.instructions <- t.instructions + n
let count_load (t : t) = t.loads <- t.loads + 1
let count_store (t : t) = t.stores <- t.stores + 1
let count_tlb_hit (t : t) = t.tlb_hits <- t.tlb_hits + 1
let count_tlb_miss (t : t) = t.tlb_misses <- t.tlb_misses + 1
let count_tlb_flush (t : t) = t.tlb_flushes <- t.tlb_flushes + 1

let count_tlb_shootdown (t : t) ~pages =
  t.tlb_shootdowns <- t.tlb_shootdowns + 1;
  t.tlb_shootdown_pages <- t.tlb_shootdown_pages + pages

let count_cache_hit (t : t) = t.cache_hits <- t.cache_hits + 1
let count_cache_miss (t : t) = t.cache_misses <- t.cache_misses + 1

let count_syscall (t : t) = function
  | Sys_mmap -> t.syscalls_mmap <- t.syscalls_mmap + 1
  | Sys_mremap -> t.syscalls_mremap <- t.syscalls_mremap + 1
  | Sys_mprotect -> t.syscalls_mprotect <- t.syscalls_mprotect + 1
  | Sys_munmap -> t.syscalls_munmap <- t.syscalls_munmap + 1
  | Sys_dummy -> t.syscalls_dummy <- t.syscalls_dummy + 1

let count_fault (t : t) = t.faults <- t.faults + 1

let count_syscall_failed (t : t) =
  t.syscalls_failed <- t.syscalls_failed + 1

let count_syscall_retry (t : t) =
  t.syscall_retries <- t.syscall_retries + 1
let count_page_mapped (t : t) = t.pages_mapped <- t.pages_mapped + 1
let count_frame_allocated (t : t) = t.frames_allocated <- t.frames_allocated + 1

let snapshot (t : t) : snapshot =
  {
    instructions = t.instructions;
    loads = t.loads;
    stores = t.stores;
    tlb_hits = t.tlb_hits;
    tlb_misses = t.tlb_misses;
    tlb_flushes = t.tlb_flushes;
    tlb_shootdowns = t.tlb_shootdowns;
    tlb_shootdown_pages = t.tlb_shootdown_pages;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    syscalls_mmap = t.syscalls_mmap;
    syscalls_mremap = t.syscalls_mremap;
    syscalls_mprotect = t.syscalls_mprotect;
    syscalls_munmap = t.syscalls_munmap;
    syscalls_dummy = t.syscalls_dummy;
    faults = t.faults;
    syscalls_failed = t.syscalls_failed;
    syscall_retries = t.syscall_retries;
    pages_mapped = t.pages_mapped;
    frames_allocated = t.frames_allocated;
  }

let zero : snapshot =
  {
    instructions = 0;
    loads = 0;
    stores = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    tlb_flushes = 0;
    tlb_shootdowns = 0;
    tlb_shootdown_pages = 0;
    cache_hits = 0;
    cache_misses = 0;
    syscalls_mmap = 0;
    syscalls_mremap = 0;
    syscalls_mprotect = 0;
    syscalls_munmap = 0;
    syscalls_dummy = 0;
    faults = 0;
    syscalls_failed = 0;
    syscall_retries = 0;
    pages_mapped = 0;
    frames_allocated = 0;
  }

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    instructions = a.instructions - b.instructions;
    loads = a.loads - b.loads;
    stores = a.stores - b.stores;
    tlb_hits = a.tlb_hits - b.tlb_hits;
    tlb_misses = a.tlb_misses - b.tlb_misses;
    tlb_flushes = a.tlb_flushes - b.tlb_flushes;
    tlb_shootdowns = a.tlb_shootdowns - b.tlb_shootdowns;
    tlb_shootdown_pages = a.tlb_shootdown_pages - b.tlb_shootdown_pages;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    syscalls_mmap = a.syscalls_mmap - b.syscalls_mmap;
    syscalls_mremap = a.syscalls_mremap - b.syscalls_mremap;
    syscalls_mprotect = a.syscalls_mprotect - b.syscalls_mprotect;
    syscalls_munmap = a.syscalls_munmap - b.syscalls_munmap;
    syscalls_dummy = a.syscalls_dummy - b.syscalls_dummy;
    faults = a.faults - b.faults;
    syscalls_failed = a.syscalls_failed - b.syscalls_failed;
    syscall_retries = a.syscall_retries - b.syscall_retries;
    pages_mapped = a.pages_mapped - b.pages_mapped;
    frames_allocated = a.frames_allocated - b.frames_allocated;
  }

(* Field list shared by the telemetry-registry shim: one counter per
   snapshot field, under the "vmm." namespace. *)
let field_values (s : snapshot) =
  [
    ("vmm.instructions", s.instructions);
    ("vmm.loads", s.loads);
    ("vmm.stores", s.stores);
    ("vmm.tlb_hits", s.tlb_hits);
    ("vmm.tlb_misses", s.tlb_misses);
    ("vmm.tlb_flushes", s.tlb_flushes);
    ("vmm.tlb_shootdowns", s.tlb_shootdowns);
    ("vmm.tlb_shootdown_pages", s.tlb_shootdown_pages);
    ("vmm.cache_hits", s.cache_hits);
    ("vmm.cache_misses", s.cache_misses);
    ("vmm.syscalls_mmap", s.syscalls_mmap);
    ("vmm.syscalls_mremap", s.syscalls_mremap);
    ("vmm.syscalls_mprotect", s.syscalls_mprotect);
    ("vmm.syscalls_munmap", s.syscalls_munmap);
    ("vmm.syscalls_dummy", s.syscalls_dummy);
    ("vmm.faults", s.faults);
    ("vmm.syscalls_failed", s.syscalls_failed);
    ("vmm.syscall_retries", s.syscall_retries);
    ("vmm.pages_mapped", s.pages_mapped);
    ("vmm.frames_allocated", s.frames_allocated);
  ]

let to_metrics ?(registry = Telemetry.Metrics.create ()) s =
  List.iter
    (fun (name, v) ->
      Telemetry.Metrics.set_counter (Telemetry.Metrics.counter registry name) v)
    (field_values s);
  registry

let of_metrics registry =
  let get name =
    Telemetry.Metrics.counter_value (Telemetry.Metrics.counter registry name)
  in
  {
    instructions = get "vmm.instructions";
    loads = get "vmm.loads";
    stores = get "vmm.stores";
    tlb_hits = get "vmm.tlb_hits";
    tlb_misses = get "vmm.tlb_misses";
    tlb_flushes = get "vmm.tlb_flushes";
    tlb_shootdowns = get "vmm.tlb_shootdowns";
    tlb_shootdown_pages = get "vmm.tlb_shootdown_pages";
    cache_hits = get "vmm.cache_hits";
    cache_misses = get "vmm.cache_misses";
    syscalls_mmap = get "vmm.syscalls_mmap";
    syscalls_mremap = get "vmm.syscalls_mremap";
    syscalls_mprotect = get "vmm.syscalls_mprotect";
    syscalls_munmap = get "vmm.syscalls_munmap";
    syscalls_dummy = get "vmm.syscalls_dummy";
    faults = get "vmm.faults";
    syscalls_failed = get "vmm.syscalls_failed";
    syscall_retries = get "vmm.syscall_retries";
    pages_mapped = get "vmm.pages_mapped";
    frames_allocated = get "vmm.frames_allocated";
  }

let sum (a : snapshot) (b : snapshot) : snapshot =
  {
    instructions = a.instructions + b.instructions;
    loads = a.loads + b.loads;
    stores = a.stores + b.stores;
    tlb_hits = a.tlb_hits + b.tlb_hits;
    tlb_misses = a.tlb_misses + b.tlb_misses;
    tlb_flushes = a.tlb_flushes + b.tlb_flushes;
    tlb_shootdowns = a.tlb_shootdowns + b.tlb_shootdowns;
    tlb_shootdown_pages = a.tlb_shootdown_pages + b.tlb_shootdown_pages;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    syscalls_mmap = a.syscalls_mmap + b.syscalls_mmap;
    syscalls_mremap = a.syscalls_mremap + b.syscalls_mremap;
    syscalls_mprotect = a.syscalls_mprotect + b.syscalls_mprotect;
    syscalls_munmap = a.syscalls_munmap + b.syscalls_munmap;
    syscalls_dummy = a.syscalls_dummy + b.syscalls_dummy;
    faults = a.faults + b.faults;
    syscalls_failed = a.syscalls_failed + b.syscalls_failed;
    syscall_retries = a.syscall_retries + b.syscall_retries;
    pages_mapped = a.pages_mapped + b.pages_mapped;
    frames_allocated = a.frames_allocated + b.frames_allocated;
  }

let total_syscalls s =
  s.syscalls_mmap + s.syscalls_mremap + s.syscalls_mprotect + s.syscalls_munmap
  + s.syscalls_dummy

let pp ppf s =
  Format.fprintf ppf
    "@[<v>instructions: %d@ loads: %d@ stores: %d@ tlb hits/misses: %d/%d@ \
     tlb shootdowns: %d (%d pages)@ cache hits/misses: %d/%d@ \
     syscalls (mmap/mremap/mprotect/munmap/dummy): %d/%d/%d/%d/%d@ faults: \
     %d@ syscalls failed/retried: %d/%d@ pages mapped: %d@ frames \
     allocated: %d@]"
    s.instructions s.loads s.stores s.tlb_hits s.tlb_misses s.tlb_shootdowns
    s.tlb_shootdown_pages s.cache_hits
    s.cache_misses s.syscalls_mmap
    s.syscalls_mremap s.syscalls_mprotect s.syscalls_munmap s.syscalls_dummy
    s.faults s.syscalls_failed s.syscall_retries s.pages_mapped
    s.frames_allocated
