type t = int

let none = -1
let make ~frame ~perm = (frame lsl 2) lor Perm.code perm
let is_present t = t >= 0
let frame t = t lsr 2
let perm_code t = t land 3
let perm t = Perm.of_code (t land 3)
let allows t access = Perm.code_allows (t land 3) access
let with_perm t perm = (t land lnot 3) lor Perm.code perm
