type errno =
  | Enomem
  | Eagain
  | Eacces
  | Einval
  | Enospc

type error =
  | Transient of errno
  | Fatal of errno

exception Syscall_failure of { name : string; error : error }

type call =
  | Mmap
  | Mmap_fixed
  | Mremap
  | Mprotect
  | Munmap

type trigger =
  | Rate of float
  | Nth_call of int
  | Burst of { first : int; length : int }
  | Va_budget of int

type rule = {
  calls : call list;
  trigger : trigger;
  error : error;
}

let call_count = 5

let call_index = function
  | Mmap -> 0
  | Mmap_fixed -> 1
  | Mremap -> 2
  | Mprotect -> 3
  | Munmap -> 4

let call_label = function
  | Mmap -> "mmap"
  | Mmap_fixed -> "mmap_fixed"
  | Mremap -> "mremap"
  | Mprotect -> "mprotect"
  | Munmap -> "munmap"

let errno_label = function
  | Enomem -> "ENOMEM"
  | Eagain -> "EAGAIN"
  | Eacces -> "EACCES"
  | Einval -> "EINVAL"
  | Enospc -> "ENOSPC"

let error_label = function
  | Transient e -> "transient " ^ errno_label e
  | Fatal e -> "fatal " ^ errno_label e

let is_transient = function Transient _ -> true | Fatal _ -> false

type t = {
  rules : rule list;
  mutable rng : int64;
  attempts : int array; (* per-call attempt counter, 1-based after bump *)
  mutable injected : int;
}

let create ?(seed = 1) rules =
  (match
     List.find_opt
       (fun r -> match r.trigger with Rate p -> p < 0. || p > 1. | _ -> false)
       rules
   with
   | Some _ -> invalid_arg "Fault_plan.create: Rate probability outside [0, 1]"
   | None -> ());
  {
    rules;
    rng = Int64.of_int (seed lxor 0x9e3779b9);
    attempts = Array.make call_count 0;
    injected = 0;
  }

let none () = create []
let has_rules t = t.rules <> []

(* splitmix64: deterministic, seed-reproducible, no dependence on the
   global Random state (workload PRNGs must not perturb fault timing). *)
let next_u64 t =
  let z = Int64.add t.rng 0x9e3779b97f4a7c15L in
  t.rng <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_float t =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) *. 0x1p-53

let rule_applies rule call = rule.calls = [] || List.mem call rule.calls

let trigger_fires t trigger ~nth ~va_bytes =
  match trigger with
  | Rate p -> p > 0. && next_float t < p
  | Nth_call n -> nth = n
  | Burst { first; length } -> nth >= first && nth < first + length
  | Va_budget bytes -> va_bytes > bytes

let decide t call ~va_bytes =
  let idx = call_index call in
  t.attempts.(idx) <- t.attempts.(idx) + 1;
  let nth = t.attempts.(idx) in
  let rec first_firing = function
    | [] -> None
    | rule :: rest ->
      if rule_applies rule call && trigger_fires t rule.trigger ~nth ~va_bytes
      then Some rule.error
      else first_firing rest
  in
  match first_firing t.rules with
  | Some error ->
    t.injected <- t.injected + 1;
    Some error
  | None -> None

let injected t = t.injected
let attempts t call = t.attempts.(call_index call)
