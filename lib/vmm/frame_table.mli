(** Physical memory: a growable set of reference-counted page frames.

    Each frame is one page of byte storage.  Frames are reference-counted
    because the whole point of the paper's scheme is that several virtual
    pages (one canonical, many shadow) alias one physical frame; a frame
    is released only when its last mapping is removed.

    Frames live in a slot array indexed by frame number (lookup is one
    array read, no hashing); retired frame numbers are reused, as a real
    physical page allocator would, so memory is bounded by the peak —
    not cumulative — frame count. *)

type t
type frame = int (** Physical frame number. *)

val create : unit -> t

val allocate : t -> Stats.t -> frame
(** Allocate a zeroed frame with reference count 0 (the caller maps it,
    which takes the first reference).  Frame numbers of fully released
    frames may be reused. *)

val incr_ref : t -> frame -> unit
val decr_ref : t -> frame -> unit
(** Release one mapping reference.  The frame's storage is reclaimed when
    the count drops to zero. *)

val ref_count : t -> frame -> int
val live_frames : t -> int
(** Number of frames currently allocated — the program's physical memory
    footprint in pages. *)

val peak_frames : t -> int
(** High-water mark of {!live_frames}. *)

val read_byte : t -> frame -> int -> int
val write_byte : t -> frame -> int -> int -> unit
(** [read_byte t f off] / [write_byte t f off v]: byte access within a
    frame; [off] in [\[0, page_size)], [v] in [\[0, 256)]. *)

val read_word : t -> frame -> int -> width:int -> int
val write_word : t -> frame -> int -> int -> width:int -> unit
(** Word-wide little-endian access: one frame lookup and one [Bytes]
    word primitive for the whole value.  [width] in 1/2/4/8;
    [off + width] must not exceed the page.  Bit-compatible with the
    byte accessors (an 8-byte value round-trips modulo 2^63, exactly as
    the per-byte loop did). *)

val exists : t -> frame -> bool

val lookup_count : t -> int
(** Diagnostic: total slot lookups performed — the fast-path tests use
    this to prove a word access costs exactly one frame lookup. *)
