type t = {
  name : string;
  instr_cost : float;
  load_cost : float;
  store_cost : float;
  tlb_miss_penalty : float;
  cache_miss_penalty : float;
  shootdown_cost : float;
  syscall_cost : float;
  fault_cost : float;
  code_quality : float;
}

let native =
  {
    name = "native";
    instr_cost = 1.0;
    load_cost = 1.5;
    store_cost = 1.5;
    tlb_miss_penalty = 30.0;
    cache_miss_penalty = 0.0;
    shootdown_cost = 0.0;
    syscall_cost = 2500.0;
    fault_cost = 4000.0;
    code_quality = 1.0;
  }

let llvm_base = { native with name = "llvm-base"; code_quality = 1.03 }
let with_code_quality t q = { t with code_quality = q }
let with_cache_penalty t p = { t with cache_miss_penalty = p }
let with_shootdown_cost t c = { t with shootdown_cost = c }

let cycles t (s : Stats.snapshot) =
  let f = float_of_int in
  let compiled_work =
    (f s.instructions *. t.instr_cost)
    +. (f s.loads *. t.load_cost)
    +. (f s.stores *. t.store_cost)
  in
  (compiled_work *. t.code_quality)
  +. (f s.tlb_misses *. t.tlb_miss_penalty)
  +. (f s.cache_misses *. t.cache_miss_penalty)
  +. (f s.tlb_shootdowns *. t.shootdown_cost)
  +. (f (Stats.total_syscalls s) *. t.syscall_cost)
  +. (f s.faults *. t.fault_cost)

let pp ppf t =
  Format.fprintf ppf "%s (quality %.2f, syscall %.0fcy, tlb miss %.0fcy)"
    t.name t.code_quality t.syscall_cost t.tlb_miss_penalty
