(** The simulated mutator root set for conservative scanning (§3.4).

    The paper's infrequent GC over long-lived pools must prove a freed
    shadow range unreferenced before recycling it, which means scanning
    everything a pointer could hide in: machine registers, the stack,
    and globals.  The simulated machine has none of those as hardware
    state — workloads keep pointers in OCaml variables — so this module
    gives a harness an explicit place to park the pointer words the
    collector is expected to see.  A word the harness does {e not}
    register here models a pointer the real collector could not see
    either (one kept in a file, another process, or an encoded form),
    which is exactly the conservative-GC residual risk the paper
    accepts.

    Zero marks an empty slot: the machine's VA base is non-zero, so no
    valid pointer is ever 0 and enumeration skips such words. *)

type source =
  | Register of int
  | Stack of int  (** depth from the stack bottom *)
  | Global of int  (** global slot number *)

val source_label : source -> string
(** ["register[3]"], ["stack[7]"], ["global[2]"] — for witness
    diagnostics. *)

type t

val create : ?registers:int -> unit -> t
(** An empty root set with [registers] machine registers (default 16),
    an empty stack, and no globals. *)

val register_count : t -> int

val set_register : t -> int -> int -> unit
(** [set_register t i v] — [v = 0] empties the register.  Raises
    [Invalid_argument] on an out-of-range index. *)

val clear_register : t -> int -> unit

val push_stack : t -> int -> unit
val pop_stack : t -> int option
val stack_depth : t -> int

val set_global : t -> slot:int -> int -> unit
(** [v = 0] clears the slot, as with registers. *)

val clear_global : t -> slot:int -> unit
val global : t -> slot:int -> int option

val iter_words : t -> (source -> int -> unit) -> unit
(** Every non-zero root word, in a deterministic order: registers by
    index, stack bottom-up, globals by slot. *)

val word_count : t -> int
(** Words a full root scan visits (including empty ones — the scan cost
    model charges for looking, not for finding). *)

val iter_heap_words :
  Machine.t -> addr:Addr.t -> bytes:int -> (Addr.t -> int -> unit) -> unit
(** [iter_heap_words m ~addr ~bytes f] calls [f word_addr value] for
    every non-zero word-aligned 8-byte word fully inside
    [addr, addr+bytes), read via {!Mmu.load_exempt} — kernel-mode, so
    the scan neither trips page protections (live objects are readable
    anyway) nor perturbs user access statistics.  The sub-word tail is
    not scanned: pointers are stored word-aligned by convention. *)

val heap_word_count : addr:Addr.t -> bytes:int -> int
(** Words {!iter_heap_words} would visit (zero or not) — the scan-cost
    denominator. *)
