(* A two-level radix table: a growable directory of fixed-size chunks of
   packed entries ({!Pte}).  Lookup is two array indexations — no
   hashing, no allocation — which is what lets the MMU's table walk (and
   the TLB-first fast path above it) stay at a handful of instructions.

   The directory grows by doubling as the bump-allocated VA space grows;
   chunks materialise lazily, so sparse address spaces stay cheap. *)

type entry = { frame : Frame_table.frame; perm : Perm.t }

let chunk_shift = 10
let chunk_size = 1 lsl chunk_shift (* 1024 pages = 4 MiB of VA per chunk *)
let chunk_mask = chunk_size - 1

type t = {
  mutable dir : int array option array;
  mutable mapped : int; (* live entries, maintained incrementally *)
  mutable walks : int;  (* diagnostic: table walks performed *)
}

let create () = { dir = Array.make 128 None; mapped = 0; walks = 0 }

let grow t want =
  let len = ref (Array.length t.dir) in
  while !len <= want do
    len := !len * 2
  done;
  let dir = Array.make !len None in
  Array.blit t.dir 0 dir 0 (Array.length t.dir);
  t.dir <- dir

(* The chunk for [page], materialising it if needed. *)
let chunk_rw t page =
  let d = page lsr chunk_shift in
  if d >= Array.length t.dir then grow t d;
  match t.dir.(d) with
  | Some c -> c
  | None ->
    let c = Array.make chunk_size Pte.none in
    t.dir.(d) <- Some c;
    c

(* Fast read-only lookup: the MMU's table walk. *)
let pte t ~page =
  t.walks <- t.walks + 1;
  let d = page lsr chunk_shift in
  if d >= Array.length t.dir then Pte.none
  else
    match Array.unsafe_get t.dir d with
    | None -> Pte.none
    | Some c -> Array.unsafe_get c (page land chunk_mask)

let map t stats ~page ~frame ~perm =
  let c = chunk_rw t page in
  let i = page land chunk_mask in
  if Pte.is_present c.(i) then
    invalid_arg (Printf.sprintf "Page_table.map: page %d already mapped" page);
  c.(i) <- Pte.make ~frame ~perm;
  t.mapped <- t.mapped + 1;
  Stats.count_page_mapped stats

let unmap t ~page =
  let d = page lsr chunk_shift in
  let missing () =
    invalid_arg (Printf.sprintf "Page_table.unmap: page %d not mapped" page)
  in
  if d >= Array.length t.dir then missing ()
  else
    match t.dir.(d) with
    | None -> missing ()
    | Some c ->
      let i = page land chunk_mask in
      let e = c.(i) in
      if not (Pte.is_present e) then missing ()
      else begin
        c.(i) <- Pte.none;
        t.mapped <- t.mapped - 1;
        { frame = Pte.frame e; perm = Pte.perm e }
      end

let lookup t ~page =
  let e = pte t ~page in
  if Pte.is_present e then Some { frame = Pte.frame e; perm = Pte.perm e }
  else None

let set_perm t ~page perm =
  let e = pte t ~page in
  if not (Pte.is_present e) then
    invalid_arg (Printf.sprintf "Page_table.set_perm: page %d not mapped" page)
  else
    match t.dir.(page lsr chunk_shift) with
    | Some c -> c.(page land chunk_mask) <- Pte.with_perm e perm
    | None ->
      failwith
        "Page_table.set_perm: present PTE in a missing directory chunk \
         (invariant: map installs the chunk before any PTE is present)"

(* Ranged protection change: walks each touched chunk once instead of
   re-indexing the directory per page.  All pages must be mapped (checked
   before any write, so a failed call changes nothing). *)
let set_perm_range t ~page ~pages perm =
  for p = page to page + pages - 1 do
    if not (Pte.is_present (pte t ~page:p)) then
      invalid_arg (Printf.sprintf "Page_table.set_perm: page %d not mapped" p)
  done;
  let p = ref page in
  let remaining = ref pages in
  while !remaining > 0 do
    let c =
      match t.dir.(!p lsr chunk_shift) with
      | Some c -> c
      | None ->
        failwith
          "Page_table.set_perm_range: present PTE in a missing directory \
           chunk (invariant: map installs the chunk before any PTE is \
           present)"
    in
    let i = !p land chunk_mask in
    let n = min !remaining (chunk_size - i) in
    for j = i to i + n - 1 do
      c.(j) <- Pte.with_perm c.(j) perm
    done;
    p := !p + n;
    remaining := !remaining - n
  done

let is_mapped t ~page = Pte.is_present (pte t ~page)
let mapped_pages t = t.mapped

let iter t f =
  Array.iteri
    (fun d chunk ->
      match chunk with
      | None -> ()
      | Some c ->
        Array.iteri
          (fun i e ->
            if Pte.is_present e then
              f ((d lsl chunk_shift) lor i)
                { frame = Pte.frame e; perm = Pte.perm e })
          c)
    t.dir

let walk_count t = t.walks
