let valid_width w =
  match w with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg (Printf.sprintf "Mmu: invalid access width %d" w)

let access_label = function
  | Perm.Read -> "read"
  | Perm.Write -> "write"

let trace_fault (m : Machine.t) addr access fault =
  if Telemetry.Sink.enabled m.trace then
  Telemetry.Sink.emit m.trace (fun () ->
      Telemetry.Event.Page_fault { addr; access = access_label access; fault })

(* Translate one page, using the TLB, and check permissions against the
   page table (permission changes must take effect immediately, as an OS
   performs a TLB shootdown on mprotect). *)
let translate (m : Machine.t) addr access =
  let page = Addr.page_index addr in
  match Page_table.lookup m.page_table ~page with
  | None ->
    Stats.count_fault m.stats;
    trace_fault m addr access "unmapped";
    raise (Fault.Trap (Fault.Unmapped { addr; access }))
  | Some { frame; perm } ->
    if not (Perm.allows perm access) then begin
      Stats.count_fault m.stats;
      trace_fault m addr access "protection";
      raise (Fault.Trap (Fault.Protection { addr; access; perm }))
    end;
    (match Tlb.lookup m.tlb m.stats ~page with
     | Some f -> assert (f = frame)
     | None -> Tlb.insert m.tlb ~page ~frame);
    Cache.access m.cache m.stats
      ~phys_addr:((frame * Addr.page_size) + Addr.offset addr);
    frame

let read_bytes m addr width access =
  let rec go i acc =
    if i >= width then acc
    else
      let a = addr + i in
      let frame = translate m a access in
      let b = Frame_table.read_byte m.Machine.frames frame (Addr.offset a) in
      go (i + 1) (acc lor (b lsl (8 * i)))
  in
  (* Fast path: the whole access sits in one page (the common case). *)
  if Addr.page_index addr = Addr.page_index (addr + width - 1) then begin
    let frame = translate m addr access in
    let off = Addr.offset addr in
    let rec bytes i acc =
      if i >= width then acc
      else
        let b = Frame_table.read_byte m.Machine.frames frame (off + i) in
        bytes (i + 1) (acc lor (b lsl (8 * i)))
    in
    bytes 0 0
  end
  else go 0 0

let write_bytes m addr width v access =
  let put frame off i =
    Frame_table.write_byte m.Machine.frames frame off ((v lsr (8 * i)) land 0xff)
  in
  if Addr.page_index addr = Addr.page_index (addr + width - 1) then begin
    let frame = translate m addr access in
    let off = Addr.offset addr in
    for i = 0 to width - 1 do
      put frame (off + i) i
    done
  end
  else
    for i = 0 to width - 1 do
      let a = addr + i in
      let frame = translate m a access in
      put frame (Addr.offset a) i
    done

let load m addr ~width =
  valid_width width;
  Stats.count_load m.Machine.stats;
  read_bytes m addr width Perm.Read

let store m addr ~width v =
  valid_width width;
  Stats.count_store m.Machine.stats;
  write_bytes m addr width v Perm.Write

(* Kernel-mode accessors walk the page table directly: no TLB traffic, no
   permission check, no user-level event counting. *)
let kernel_frame (m : Machine.t) addr =
  let page = Addr.page_index addr in
  match Page_table.lookup m.page_table ~page with
  | Some { frame; _ } -> frame
  | None -> raise (Fault.Trap (Fault.Unmapped { addr; access = Perm.Read }))

let load_exempt m addr ~width =
  valid_width width;
  let rec go i acc =
    if i >= width then acc
    else
      let a = addr + i in
      let frame = kernel_frame m a in
      let b = Frame_table.read_byte m.Machine.frames frame (Addr.offset a) in
      go (i + 1) (acc lor (b lsl (8 * i)))
  in
  go 0 0

let store_exempt m addr ~width v =
  valid_width width;
  for i = 0 to width - 1 do
    let a = addr + i in
    let frame = kernel_frame m a in
    Frame_table.write_byte m.Machine.frames frame (Addr.offset a)
      ((v lsr (8 * i)) land 0xff)
  done

let probe (m : Machine.t) addr ~access =
  let page = Addr.page_index addr in
  match Page_table.lookup m.page_table ~page with
  | None -> Error (Fault.Unmapped { addr; access })
  | Some { perm; _ } ->
    if Perm.allows perm access then Ok ()
    else Error (Fault.Protection { addr; access; perm })
