let valid_width w =
  match w with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg (Printf.sprintf "Mmu: invalid access width %d" w)

let access_label = function
  | Perm.Read -> "read"
  | Perm.Write -> "write"

let trace_fault (m : Machine.t) addr access fault =
  if Telemetry.Sink.enabled m.trace then
  Telemetry.Sink.emit m.trace (fun () ->
      Telemetry.Event.Page_fault { addr; access = access_label access; fault })

let unmapped (m : Machine.t) addr access =
  Stats.count_fault m.stats;
  trace_fault m addr access "unmapped";
  raise (Fault.Trap (Fault.Unmapped { addr; access }))

let protection (m : Machine.t) addr access perm =
  Stats.count_fault m.stats;
  trace_fault m addr access "protection";
  raise (Fault.Trap (Fault.Protection { addr; access; perm }))

(* Translate one page, TLB first.  A hit answers from the cached packed
   entry alone — translation *and* permission bits — and never touches
   the page table; only a miss walks the radix table and refills.  The
   kernel keeps the TLB coherent by shooting down every page whose entry
   it changes (mprotect / munmap / remap), so a cached entry is always
   the current one. *)
let translate (m : Machine.t) addr access =
  let page = Addr.page_index addr in
  let pte =
    let cached = Tlb.lookup_pte m.tlb m.stats ~page in
    if Pte.is_present cached then cached
    else begin
      let walked = Page_table.pte m.page_table ~page in
      if not (Pte.is_present walked) then unmapped m addr access;
      Tlb.insert_pte m.tlb ~page ~pte:walked;
      walked
    end
  in
  if not (Pte.allows pte access) then protection m addr access (Pte.perm pte);
  let frame = Pte.frame pte in
  Cache.access m.cache m.stats
    ~phys_addr:((frame * Addr.page_size) + Addr.offset addr);
  frame

(* Cross-page accesses translate and move byte by byte, in address
   order, so the faulting address of a partially out-of-range access is
   the first byte that faults — exactly as the single-page path reports
   the access address itself. *)
let read_bytes_slow m addr width access =
  let rec go i acc =
    if i >= width then acc
    else
      let a = addr + i in
      let frame = translate m a access in
      let b = Frame_table.read_byte m.Machine.frames frame (Addr.offset a) in
      go (i + 1) (acc lor (b lsl (8 * i)))
  in
  go 0 0

let write_bytes_slow m addr width v access =
  for i = 0 to width - 1 do
    let a = addr + i in
    let frame = translate m a access in
    Frame_table.write_byte m.Machine.frames frame (Addr.offset a)
      ((v lsr (8 * i)) land 0xff)
  done

let load m addr ~width =
  valid_width width;
  Stats.count_load m.Machine.stats;
  let off = Addr.offset addr in
  if off + width <= Addr.page_size then
    (* Fast path (the common case): one translation, one frame lookup,
       one word-wide read. *)
    let frame = translate m addr Perm.Read in
    Frame_table.read_word m.Machine.frames frame off ~width
  else read_bytes_slow m addr width Perm.Read

let store m addr ~width v =
  valid_width width;
  Stats.count_store m.Machine.stats;
  let off = Addr.offset addr in
  if off + width <= Addr.page_size then
    let frame = translate m addr Perm.Write in
    Frame_table.write_word m.Machine.frames frame off v ~width
  else write_bytes_slow m addr width v Perm.Write

(* Kernel-mode accessors walk the page table directly: no TLB traffic, no
   permission check, no user-level event counting. *)
let kernel_frame (m : Machine.t) addr =
  let pte = Page_table.pte m.page_table ~page:(Addr.page_index addr) in
  if Pte.is_present pte then Pte.frame pte
  else raise (Fault.Trap (Fault.Unmapped { addr; access = Perm.Read }))

let load_exempt m addr ~width =
  valid_width width;
  let off = Addr.offset addr in
  if off + width <= Addr.page_size then
    let frame = kernel_frame m addr in
    Frame_table.read_word m.Machine.frames frame off ~width
  else
    let rec go i acc =
      if i >= width then acc
      else
        let a = addr + i in
        let frame = kernel_frame m a in
        let b = Frame_table.read_byte m.Machine.frames frame (Addr.offset a) in
        go (i + 1) (acc lor (b lsl (8 * i)))
    in
    go 0 0

let store_exempt m addr ~width v =
  valid_width width;
  let off = Addr.offset addr in
  if off + width <= Addr.page_size then
    let frame = kernel_frame m addr in
    Frame_table.write_word m.Machine.frames frame off v ~width
  else
    for i = 0 to width - 1 do
      let a = addr + i in
      let frame = kernel_frame m a in
      Frame_table.write_byte m.Machine.frames frame (Addr.offset a)
        ((v lsr (8 * i)) land 0xff)
    done

let probe (m : Machine.t) addr ~access =
  let page = Addr.page_index addr in
  match Page_table.lookup m.page_table ~page with
  | None -> Error (Fault.Unmapped { addr; access })
  | Some { perm; _ } ->
    if Perm.allows perm access then Ok ()
    else Error (Fault.Protection { addr; access; perm })
