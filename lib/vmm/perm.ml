type t =
  | No_access
  | Read_only
  | Read_write

type access =
  | Read
  | Write

let allows perm access =
  match perm, access with
  | No_access, (Read | Write) -> false
  | Read_only, Read -> true
  | Read_only, Write -> false
  | Read_write, (Read | Write) -> true

(* Integer encoding used by the packed page-table entries ({!Pte}) and
   the TLB: ordering matters — [Read] needs code >= 1, [Write] needs 2. *)
let code = function
  | No_access -> 0
  | Read_only -> 1
  | Read_write -> 2

let of_code = function
  | 0 -> No_access
  | 1 -> Read_only
  | 2 -> Read_write
  | c -> invalid_arg (Printf.sprintf "Perm.of_code: %d" c)

let code_allows c access =
  match access with
  | Read -> c >= 1
  | Write -> c = 2

let pp ppf = function
  | No_access -> Format.pp_print_string ppf "---"
  | Read_only -> Format.pp_print_string ppf "r--"
  | Read_write -> Format.pp_print_string ppf "rw-"

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"

let equal a b =
  match a, b with
  | No_access, No_access | Read_only, Read_only | Read_write, Read_write ->
    true
  | (No_access | Read_only | Read_write), _ -> false
