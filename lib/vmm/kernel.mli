(** The simulated operating-system interface: the four system calls the
    paper's run-time needs ([mmap], [mremap]-as-aliasing, [mprotect],
    [munmap]) plus a dummy no-op call used to isolate syscall overhead
    (the paper's "PA + dummy syscalls" column).

    Every call counts one syscall of the appropriate kind in
    {!Stats}; the {!Cost_model} charges each a fixed cost. *)

val mmap : Machine.t -> pages:int -> Addr.t
(** Map [pages] fresh zeroed pages read-write at a fresh virtual address;
    returns the base.  Models [mmap(NULL, len, PROT_READ|PROT_WRITE,
    MAP_PRIVATE|MAP_ANONYMOUS)]. *)

val mmap_fixed : Machine.t -> addr:Addr.t -> pages:int -> unit
(** Map [pages] fresh zeroed pages read-write at the given page-aligned
    address, atomically replacing any existing mappings there (Linux
    [MAP_FIXED] semantics).  Old frames lose a reference.  This is how
    recycled virtual ranges from a destroyed pool are reused as canonical
    pages with fresh backing. *)

val mremap_alias : Machine.t -> src:Addr.t -> pages:int -> Addr.t
(** The paper's per-allocation call: create a {e second} virtual mapping
    (at a fresh address) of the physical frames currently backing
    [src .. src+pages*page_size), read-write.  Models Linux
    [mremap(old, 0, len)] which leaves the old mapping intact.  [src]
    must be page-aligned and mapped. *)

val mremap_alias_slab :
  Machine.t -> src:Addr.t -> pages:int -> copies:int -> Addr.t
(** Vectored {!mremap_alias}: one syscall creates [copies] contiguous
    aliases of the canonical run [src .. src+pages), laid out
    back-to-back at a fresh base (copy [i] starts at
    [base + i*pages*page_size]).  Models the slab-granularity aliasing
    call the paper proposes as an OS enhancement; amortizes alias cost
    to ~1 syscall per slab.  Validates [src] fully before mapping, so a
    rejection leaves the machine unchanged. *)

val mremap_alias_at : Machine.t -> src:Addr.t -> dst:Addr.t -> pages:int -> unit
(** Like {!mremap_alias} but the new mapping is placed at [dst]
    (page-aligned; any existing mappings there are replaced) — used when
    shadow pages are drawn from a recycled virtual range. *)

val mprotect : Machine.t -> addr:Addr.t -> pages:int -> Perm.t -> unit
(** Change protection of [pages] pages starting at page-aligned [addr];
    performs {e one} batched TLB shootdown for the whole range (counted
    in {!Stats} and traced as a single [Tlb_flush] event).  The paper's
    per-free call.  Fails atomically if any page is unmapped. *)

val munmap : Machine.t -> addr:Addr.t -> pages:int -> unit
(** Remove mappings; frames are freed when their last mapping goes.
    Performs one batched TLB shootdown for the range; fails atomically
    if any page is unmapped. *)

val dummy_syscall : Machine.t -> unit
(** No-op syscall: costs a kernel round trip and does nothing. *)

val page_perm : Machine.t -> Addr.t -> Perm.t option
(** Observe the protection of the page containing an address (no cost;
    used by tests and diagnostics). *)
