(** Page protection bits, the moral equivalent of [PROT_NONE] /
    [PROT_READ] / [PROT_READ|PROT_WRITE]. *)

type t =
  | No_access  (** [PROT_NONE]: every access traps. *)
  | Read_only  (** [PROT_READ]: stores trap. *)
  | Read_write (** [PROT_READ|PROT_WRITE]. *)

type access =
  | Read
  | Write

val allows : t -> access -> bool

val code : t -> int
(** Integer encoding for packed page-table entries: [No_access] is 0,
    [Read_only] 1, [Read_write] 2. *)

val of_code : int -> t
(** Inverse of {!code}; raises [Invalid_argument] outside [0..2]. *)

val code_allows : int -> access -> bool
(** [code_allows (code p) a = allows p a], without constructing [t] —
    the MMU fast path's permission check. *)

val pp : Format.formatter -> t -> unit
val pp_access : Format.formatter -> access -> unit
val equal : t -> t -> bool
