type t = {
  frames : Frame_table.t;
  page_table : Page_table.t;
  tlb : Tlb.t;
  cache : Cache.t;
  stats : Stats.t;
  trace : Telemetry.Sink.t;
  mutable cost : Cost_model.t;
  mutable next_va : Addr.t;
  mutable fault_plan : Fault_plan.t;
}

let va_base = Addr.of_page 0x10000 (* 256 MiB: keeps 0 and low pages invalid *)

let cycles t = Cost_model.cycles t.cost (Stats.snapshot t.stats)

let create ?(cost = Cost_model.llvm_base) ?(tlb_entries = 64) ?trace
    ?fault_plan () =
  let trace =
    match trace with
    | Some sink -> sink
    | None -> Telemetry.Sink.disabled ()
  in
  let fault_plan =
    match fault_plan with
    | Some plan -> plan
    | None -> Fault_plan.none ()
  in
  let t =
    {
      frames = Frame_table.create ();
      page_table = Page_table.create ();
      tlb = Tlb.create ~entries:tlb_entries ();
      cache = Cache.create ();
      stats = Stats.create ();
      trace;
      cost;
      next_va = va_base;
      fault_plan;
    }
  in
  (* Events carry the machine's own logical clock. *)
  Telemetry.Sink.set_clock trace (fun () -> cycles t);
  t

let fresh_pages t n =
  if n <= 0 then
    invalid_arg "Machine.fresh_pages: pages <= 0 (callers validate page counts)";
  let base = t.next_va in
  t.next_va <- t.next_va + (n * Addr.page_size);
  base

let cycles_since t before =
  Cost_model.cycles t.cost (Stats.diff (Stats.snapshot t.stats) before)

let va_bytes_used t = t.next_va - va_base
