(** The memory management unit: address translation and the hardware
    permission check performed on {e every} access.

    This is the mechanism the paper leans on: instead of inserting
    software checks on loads and stores, the scheme arranges page
    protections so that the MMU's existing per-access check catches
    dangling uses for free.  A failed check raises {!Fault.Trap}, the
    simulator's SIGSEGV.

    Translation is TLB-first: a hit answers the access from the cached
    packed entry (frame + protection bits) without consulting the page
    table, mirroring the hardware economics the paper relies on — checks
    cost nothing on the hot path.  A within-page access of any width is
    one TLB probe, one frame lookup and one word-wide memory operation;
    only page-crossing accesses fall back to byte-at-a-time. *)

val load : Machine.t -> Addr.t -> width:int -> int
(** [load m a ~width] reads a [width]-byte little-endian integer
    ([width] in 1/2/4/8).  Counts one load, probes the TLB per page
    touched, and raises {!Fault.Trap} on an unmapped page or a
    protection violation. *)

val store : Machine.t -> Addr.t -> width:int -> int -> unit
(** Write counterpart of {!load}. *)

val load_exempt : Machine.t -> Addr.t -> width:int -> int
val store_exempt : Machine.t -> Addr.t -> width:int -> int -> unit
(** Kernel-mode access: ignores permissions (but not mappings) and does
    not count user loads/stores or TLB traffic.  Used by the simulated
    kernel and by debuggers; never by workload code. *)

val probe : Machine.t -> Addr.t -> access:Perm.access -> (unit, Fault.t) result
(** Check whether an access would succeed, without performing it or
    counting events.  Used by tests and by fault-report rendering. *)
