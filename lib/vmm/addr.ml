type t = int

let page_shift = 12
let page_size = 1 lsl page_shift
let page_index a = a lsr page_shift
let page_base a = a land lnot (page_size - 1)
let offset a = a land (page_size - 1)
let of_page i = i lsl page_shift
let is_page_aligned a = offset a = 0
let align_up a = (a + page_size - 1) land lnot (page_size - 1)

let pages_spanning a size =
  if size <= 0 then invalid_arg "Addr.pages_spanning: size <= 0";
  page_index (a + size - 1) - page_index a + 1

let pp ppf a = Format.fprintf ppf "0x%x" a
