(** A simulated machine: physical memory, a page table, a TLB, and event
    counters, under a given cost model.

    The MMU ({!Mmu}) and the kernel ({!Kernel}) both operate on a
    [Machine.t]; user-level code (allocators, workloads) never touches
    frames directly. *)

type t = {
  frames : Frame_table.t;
  page_table : Page_table.t;
  tlb : Tlb.t;
  cache : Cache.t;  (** physically-indexed data cache (stats-only by default) *)
  stats : Stats.t;
  trace : Telemetry.Sink.t;  (** event-trace attachment; disabled by default *)
  mutable cost : Cost_model.t;
  mutable next_va : Addr.t;  (** bump pointer for fresh virtual regions *)
  mutable fault_plan : Fault_plan.t;
      (** fault-injection plan consulted by {!Syscalls}; defaults to
          {!Fault_plan.none}, so an ordinary machine never fails *)
}

val create :
  ?cost:Cost_model.t ->
  ?tlb_entries:int ->
  ?trace:Telemetry.Sink.t ->
  ?fault_plan:Fault_plan.t ->
  unit ->
  t
(** Fresh machine.  The virtual address space starts at a non-zero base
    so that address 0 is never valid (null-pointer hygiene).  [trace]
    attaches an event sink (see {!Telemetry.Sink}); its clock is set to
    this machine's simulated cycle count.  [fault_plan] arms syscall
    fault injection for calls made through {!Syscalls}. *)

val fresh_pages : t -> int -> Addr.t
(** Reserve [n] pages of *virtual address space* (no mapping is
    installed); returns the base address.  This models the kernel's
    choice of a fresh VA range for [mmap]/[mremap]. *)

val cycles : t -> float
(** Simulated cycles consumed so far, under the machine's cost model. *)

val cycles_since : t -> Stats.snapshot -> float

val va_bytes_used : t -> int
(** Total virtual address space ever handed out, in bytes — the paper's
    §3.4 exhaustion metric. *)
