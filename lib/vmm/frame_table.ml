(* Physical memory as a growable slot array indexed by frame number —
   frame lookup is one bounds-checked array read, not a hash probe.
   Freed frame numbers go on a free list and are reused (as a real
   physical allocator would), which also keeps the array bounded by the
   *peak* frame count rather than the cumulative allocation count. *)

type frame = int

type slot = { storage : Bytes.t; mutable refs : int }

type t = {
  mutable slots : slot option array;
  mutable free : frame list; (* retired frame numbers, ready for reuse *)
  mutable next : frame;      (* never-used watermark *)
  mutable live : int;
  mutable peak : int;
  mutable spare : Bytes.t list;
      (* retired page buffers, zero-filled on reuse: a munmap/mmap churn
         loop recycles storage instead of hammering the GC with fresh
         4 KiB allocations *)
  mutable lookups : int;     (* diagnostic: slot lookups performed *)
}

let create () =
  { slots = Array.make 1024 None; free = []; next = 0; live = 0; peak = 0;
    spare = []; lookups = 0 }

let grow t want =
  let len = ref (Array.length t.slots) in
  while !len <= want do
    len := !len * 2
  done;
  let slots = Array.make !len None in
  Array.blit t.slots 0 slots 0 (Array.length t.slots);
  t.slots <- slots

let allocate t stats =
  let f =
    match t.free with
    | f :: rest ->
      t.free <- rest;
      f
    | [] ->
      let f = t.next in
      t.next <- t.next + 1;
      if f >= Array.length t.slots then grow t f;
      f
  in
  let storage =
    match t.spare with
    | b :: rest ->
      t.spare <- rest;
      Bytes.fill b 0 Addr.page_size '\000';
      b
    | [] -> Bytes.make Addr.page_size '\000'
  in
  t.slots.(f) <- Some { storage; refs = 0 };
  Stats.count_frame_allocated stats;
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live;
  f

let slot t f =
  t.lookups <- t.lookups + 1;
  if f < 0 || f >= Array.length t.slots then
    invalid_arg (Printf.sprintf "Frame_table: unknown frame %d" f)
  else
    match Array.unsafe_get t.slots f with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Frame_table: unknown frame %d" f)

let incr_ref t f =
  let s = slot t f in
  s.refs <- s.refs + 1

let decr_ref t f =
  let s = slot t f in
  s.refs <- s.refs - 1;
  if s.refs < 0 then
    failwith
      (Printf.sprintf
         "Frame_table.decr_ref: frame %d refcount went negative (invariant: \
          every decr_ref pairs a prior incr_ref)"
         f);
  if s.refs = 0 then begin
    t.slots.(f) <- None;
    t.free <- f :: t.free;
    t.spare <- s.storage :: t.spare;
    t.live <- t.live - 1
  end

let ref_count t f = (slot t f).refs
let live_frames t = t.live
let peak_frames t = t.peak

let read_byte t f off = Char.code (Bytes.get (slot t f).storage off)
let write_byte t f off v = Bytes.set (slot t f).storage off (Char.chr (v land 0xff))

(* Word-wide access: one slot lookup and one [Bytes] primitive for the
   whole access.  [off + width] must stay within the page (the MMU's
   single-page fast path guarantees it); widths are 1/2/4/8 as validated
   by the MMU.  Values are little-endian, matching the byte accessors:
   an 8-byte value round-trips modulo 2^63 exactly as the per-byte loop
   did (both truncate the same way on OCaml's 63-bit ints). *)
let read_word t f off ~width =
  let s = (slot t f).storage in
  match width with
  | 1 -> Char.code (Bytes.get s off)
  | 2 -> Bytes.get_uint16_le s off
  | 4 -> Int32.to_int (Bytes.get_int32_le s off) land 0xFFFFFFFF
  | 8 -> Int64.to_int (Bytes.get_int64_le s off)
  | _ -> invalid_arg (Printf.sprintf "Frame_table.read_word: width %d" width)

let write_word t f off v ~width =
  let s = (slot t f).storage in
  match width with
  | 1 -> Bytes.set s off (Char.chr (v land 0xff))
  | 2 -> Bytes.set_uint16_le s off (v land 0xffff)
  | 4 -> Bytes.set_int32_le s off (Int32.of_int v)
  | 8 -> Bytes.set_int64_le s off (Int64.of_int v)
  | _ -> invalid_arg (Printf.sprintf "Frame_table.write_word: width %d" width)

let exists t f = f >= 0 && f < Array.length t.slots && t.slots.(f) <> None
let lookup_count t = t.lookups
