.PHONY: all build test bench bench-smoke faults-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Full-scale evaluation; writes BENCH_results.json.
bench:
	dune exec bench/main.exe

# Quick bench run (scale divisor 16) followed by a structural check of
# the results file: fails if BENCH_results.json is malformed or the
# fast-path invariants (no walk on TLB hit, one frame lookup per word
# access) do not hold.
bench-smoke:
	dune exec bench/main.exe -- --smoke
	dune exec bench/validate_results.exe -- BENCH_results.json

# Quick fault-injection campaign: exits nonzero if any workload crashes
# undiagnosed or any detection miss cannot be attributed to a recorded
# degradation window.
faults-smoke:
	dune exec bin/danguard.exe -- faults all --scale-divisor 8

# The CI gate: build, the whole test suite, and a scale-divided bench
# run that still exercises every section and validates BENCH_results.json.
check:
	dune build
	dune runtest
	$(MAKE) bench-smoke
	$(MAKE) faults-smoke

clean:
	dune clean
