.PHONY: all build test bench bench-smoke faults-smoke farm-smoke report-smoke soak-smoke tag-smoke lint-smoke pools-smoke lint-src check clean

all: build

build:
	dune build

test:
	dune runtest

# Full-scale evaluation; writes BENCH_results.json.
bench:
	dune exec bench/main.exe

# Quick bench run (scale divisor 16) followed by a structural check of
# the results file: fails if BENCH_results.json is malformed or the
# fast-path invariants (no walk on TLB hit, one frame lookup per word
# access) do not hold.
bench-smoke:
	dune exec bench/main.exe -- --smoke
	dune exec bench/validate_results.exe -- BENCH_results.json

# Quick fault-injection campaign: exits nonzero if any workload crashes
# undiagnosed or any detection miss cannot be attributed to a recorded
# degradation window.
faults-smoke:
	dune exec bin/danguard.exe -- faults all --scale-divisor 8

# Domain-sharded farm smoke: 2 shards over a small probed connection
# set; nonzero exit if the farm or scheduler misbehaves (the totals
# contract itself is enforced by test/test_farm.ml and bench-smoke).
farm-smoke:
	dune exec bin/danguard.exe -- farm ghttpd --shards 2 -c 12 --probe-every 4

# Fleet crash-report smoke: a recoverable-mode farm run with seeded
# probes over 2 injection sites; the command exits nonzero if any
# violation escapes recovery or any seeded probe goes unreported.
report-smoke:
	dune exec bin/danguard.exe -- report ghttpd --shards 2 -c 16 --probe-every 4 --sites 2

# Multi-day endurance smoke: a 3-simulated-day ghttpd soak with the
# conservative GC armed; nonzero exit if any planted probe fails to
# trap, any witnessed range is reclaimed, the budget exhausts, or the
# VA growth curve fails to flatten.  The --no-reclaim run checks the
# oracle on the baseline (exhaustion there is expected, not fatal).
soak-smoke:
	dune exec bin/danguard.exe -- soak --days 3 -c 120
	dune exec bin/danguard.exe -- soak --days 3 -c 120 --no-reclaim

# Tagged-backend smoke: the generation-table unit suite, the
# shadow-vs-tagged differential oracle (must be byte-identical modulo
# attributed tag-width wraparounds), and a 2-shard farm serving under
# --scheme tagged with seeded dangling probes.
tag-smoke:
	dune exec test/test_tagging.exe
	dune exec test/test_dangling.exe -- test oracle
	dune exec bin/danguard.exe -- farm ghttpd --shards 2 -c 12 --probe-every 4 --scheme tagged

# Static-analysis CLI smoke: exit codes (0 clean/may, 3 must-UAF) and
# the machine-readable output pinned by the golden files.
lint-smoke:
	dune build bin/danguard.exe
	dune exec bin/danguard.exe -- lint examples/lint/safe.mc
	dune exec bin/danguard.exe -- lint examples/lint/may_alias.mc
	dune exec bin/danguard.exe -- lint examples/lint/deep_free.mc
	! dune exec bin/danguard.exe -- lint examples/lint/must_uaf.mc
	! dune exec bin/danguard.exe -- lint examples/lint/double_free.mc
	@for f in safe must_uaf may_alias double_free deep_free; do \
	  rc=0; \
	  dune exec bin/danguard.exe -- lint --json examples/lint/$$f.mc \
	    > /tmp/lint.$$f.json || rc=$$?; \
	  { [ $$rc -eq 0 ] || [ $$rc -eq 3 ]; } || exit 1; \
	  diff -u examples/lint/$$f.expected.json /tmp/lint.$$f.json || exit 1; \
	done
	@echo "lint-smoke: OK"

# Pool-inference CLI smoke: the human pool map renders, the SARIF
# export matches its golden, and two independent `pools --json` runs
# over one program are byte-identical (the canonical-pool-map
# determinism contract the bench validator also gates on).
pools-smoke:
	dune build bin/danguard.exe
	dune exec bin/danguard.exe -- pools examples/programs/figure1.mc
	dune exec bin/danguard.exe -- pools --json examples/programs/figure1.mc \
	  > /tmp/pools.a.json
	dune exec bin/danguard.exe -- pools --json examples/programs/figure1.mc \
	  > /tmp/pools.b.json
	diff -u /tmp/pools.a.json /tmp/pools.b.json
	rc=0; dune exec bin/danguard.exe -- lint --sarif examples/lint/must_uaf.mc \
	  > /tmp/lint.must_uaf.sarif || rc=$$?; [ $$rc -eq 3 ] || exit 1
	diff -u examples/lint/must_uaf.expected.sarif /tmp/lint.must_uaf.sarif
	@echo "pools-smoke: OK"

# No new bare failwith / assert false in the core libraries (each must
# name the invariant it guards; see scripts/lint_src.sh).
lint-src:
	sh scripts/lint_src.sh

# The CI gate: build, the whole test suite, and a scale-divided bench
# run that still exercises every section and validates BENCH_results.json.
check:
	dune build
	dune runtest
	$(MAKE) lint-src
	$(MAKE) lint-smoke
	$(MAKE) pools-smoke
	$(MAKE) bench-smoke
	$(MAKE) faults-smoke
	$(MAKE) farm-smoke
	$(MAKE) report-smoke
	$(MAKE) soak-smoke
	$(MAKE) tag-smoke

clean:
	dune clean
