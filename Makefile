.PHONY: all build test bench check clean

all: build

build:
	dune build

test:
	dune runtest

# Full-scale evaluation; writes BENCH_results.json.
bench:
	dune exec bench/main.exe

# The CI gate: build, the whole test suite, and a scale-divided bench
# run that still exercises every section and emits BENCH_results.json.
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- --smoke

clean:
	dune clean
